// The scheduling LP (paper §V).
//
// Original formulation, per resource type r and time slot t:
//
//   lexmin max_t,r  z_t^r / C_t^r                                   (1)
//   s.t.   sum_{t=a_i}^{d_i} x_it^r = s_i^r      for every job i    (2)
//          sum_i x_it^r = z_t^r                  for every t, r     (3)
//          z_t^r <= C_t^r                                           (4)
//          x_it^r >= 0 (integral by Lemma 2)                        (5)
//
// plus a per-slot width bound x_it^r <= W_i^r (a job cannot occupy more
// than all of its tasks at once), which appends identity rows and therefore
// preserves total unimodularity.
//
// Two observations this implementation exploits (documented in DESIGN.md):
//
//  * Separability: x_it^r appears in exactly one demand row (i, r) and one
//    load row (t, r). Resource types couple only through the lexicographic
//    objective, and the lexmin of a union of independent vectors is the
//    union of their lexmins — so the LP is built and solved per resource.
//  * Constraint (4) needs no explicit row: the first lexmin round minimizes
//    u = max z_t^r / C_t^r, and the formulation is infeasible w.r.t. the
//    caps exactly when u* > 1 — reported as `capacity_exceeded` so the
//    caller can relax windows instead of getting a hard infeasible.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "lp/lexmin.h"
#include "lp/model.h"
#include "workload/resources.h"

namespace flowtime::core {

/// One deadline-aware job as the LP sees it, in slot units.
struct LpJob {
  int uid = -1;             // caller's identifier, echoed back
  int release_slot = 0;     // a_i (inclusive)
  int deadline_slot = 0;    // d_i (inclusive; already slack-adjusted)
  workload::ResourceVec demand{};  // s_i^r, resource-seconds
  workload::ResourceVec width{};   // W_i^r, resource-seconds per slot
};

/// Cross-replan warm-start cache, owned by the caller (one per scheduler).
/// Each slot pairs the final lexmin basis of the previous solve with a
/// fingerprint of the model shape it belongs to; solve_placement reuses
/// the basis only when the next solve builds the same shape, and falls
/// back to a cold solve on any mismatch. The fingerprint covers structure
/// (columns, rows, per-row sparsity), not data — changed demands/levels
/// under the same shape are exactly what warm starts absorb.
struct PlacementWarmCache {
  struct Entry {
    std::uint64_t fingerprint = 0;
    lp::Basis basis;
  };
  /// Per-resource entries for the separable formulation.
  std::array<Entry, workload::kNumResources> per_resource;
  /// Single entry for the coupled formulation.
  Entry coupled;

  void clear() {
    for (Entry& e : per_resource) e = Entry{};
    coupled = Entry{};
  }
};

struct LpScheduleOptions {
  lp::LexMinMaxOptions lexmin;
  /// Optional warm-start cache shared across solve_placement calls.
  /// Null disables warm starting. Not owned.
  PlacementWarmCache* warm_cache = nullptr;
  /// Resource-coupled variables: instead of independent x_it^r per
  /// resource (the paper's formulation), use one task-time variable f_it
  /// per (job, slot) with the job's per-task bundle d_i^r tying every
  /// resource to it (allocation of r = f_it * d_i^r). Slightly more
  /// constrained than the paper's LP (its optimum can be marginally less
  /// flat), but allocations then always materialize as proportional task
  /// bundles — what containers need. The constraint matrix loses the clean
  /// bipartite TU structure, but remains an LP.
  bool coupled_resources = false;
  /// Re-solve the final allocation as an integral transportation problem
  /// with the lexmin levels as per-slot caps (DESIGN.md §5.4). Requires
  /// integral demands/widths to be meaningful; off by default because the
  /// simulator's demands are fractional resource-seconds.
  bool integral_extraction = false;
  /// TU/max-flow fast path: when a solve only needs the first lexmin level
  /// (lexmin.max_rounds == 1) and the per-resource system passes the
  /// lp/unimodular flow_representable gate, answer it by parametric max
  /// flow (Dinic + binary search on the uniform level) instead of simplex.
  /// Asymptotically faster and allocation-equivalent at the first level;
  /// solves that refine deeper levels, the coupled formulation, and
  /// integral extraction always take the simplex path. On by default — the
  /// gate makes it a no-op wherever its answer could differ.
  bool flow_fast_path = true;
};

/// The planned allocation: x[job_index][slot - first_slot] per resource.
struct LpSchedule {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  /// True when even the flattest placement exceeds some slot's capacity —
  /// the deadline windows are collectively infeasible (paper constraint (4)
  /// violated at the optimum).
  bool capacity_exceeded = false;
  int first_slot = 0;
  int num_slots = 0;
  /// allocation[j][t][r]: resource-seconds granted to jobs[j] in slot
  /// first_slot + t.
  std::vector<std::vector<workload::ResourceVec>> allocation;
  /// Normalized load per slot and resource after placement.
  std::vector<workload::ResourceVec> normalized_load;
  double max_normalized_load = 0.0;
  std::int64_t pivots = 0;
  int lexmin_rounds = 0;
  /// True when any lexmin solve exhausted its round budget with load rows
  /// unfixed: the plan is feasible and its peak level exact, but the load
  /// profile tail is not the lexicographic optimum (a plan-quality
  /// warning, not a failure).
  bool lexmin_truncated = false;
  /// True when a shared SolveBudget (options.lexmin.lp_options.budget) ran
  /// out during the solve. The schedule may still be ok() — a truncated
  /// feasible point — but the caller's escalation ladder should know the
  /// budget, not the model, bounded its quality.
  bool budget_exhausted = false;
  /// True when at least one resource was answered by the TU/max-flow fast
  /// path instead of simplex (see LpScheduleOptions::flow_fast_path);
  /// `pivots` then excludes those resources by construction.
  bool flow_fast_path = false;

  bool ok() const { return status == lp::SolveStatus::kOptimal; }
};

/// Builds and solves the placement for one horizon.
///
/// `capacity_per_slot[t]` is C_t^r in resource-seconds for slot
/// `first_slot + t`; windows are clipped to [first_slot,
/// first_slot + capacity_per_slot.size()). Jobs whose window is empty after
/// clipping make the problem infeasible (their demand cannot be placed).
LpSchedule solve_placement(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, const LpScheduleOptions& options = {});

/// The coupled-variable variant (see LpScheduleOptions::coupled_resources);
/// called by solve_placement when that option is set. Jobs' demands must be
/// proportional to their widths across resources (true for gang-of-task
/// jobs by construction: both equal tasks x d_i^r x time).
LpSchedule solve_placement_coupled(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, const LpScheduleOptions& options = {});

}  // namespace flowtime::core
