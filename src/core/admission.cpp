#include "core/admission.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace flowtime::core {

namespace {

void trace_decision(const char* op, const workload::Workflow& candidate,
                    double now_s, const AdmissionDecision& decision) {
  if (!obs::enabled()) return;
  obs::registry().counter("core.admission.evaluations").add();
  if (decision.admitted) {
    obs::registry().counter("core.admission.admitted").add();
  } else {
    obs::registry().counter("core.admission.rejected").add();
  }
  obs::emit(obs::TraceEvent("admission")
                .field("op", op)
                .field("workflow", candidate.id)
                .field("now_s", now_s)
                .field("admitted", decision.admitted)
                .field("peak_load", decision.peak_load)
                .field("reason", decision.reason));
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

std::optional<std::vector<AdmissionController::AdmittedJob>>
AdmissionController::decompose_to_jobs(const workload::Workflow& workflow,
                                       DecomposeStatus* status) const {
  DecompositionConfig decomposition_config;
  decomposition_config.cluster = config_.cluster;
  decomposition_config.mode = config_.decomposition_mode;
  const DeadlineDecomposer decomposer(decomposition_config);
  const DecompositionResult decomposition = decomposer.decompose(workflow);
  if (status != nullptr) *status = decomposition.status;
  if (!decomposition.ok()) return std::nullopt;

  const double slot_seconds = config_.cluster.slot_seconds;
  std::vector<AdmittedJob> jobs;
  jobs.reserve(static_cast<std::size_t>(workflow.dag.num_nodes()));
  for (dag::NodeId v = 0; v < workflow.dag.num_nodes(); ++v) {
    const JobWindow& window =
        decomposition.windows[static_cast<std::size_t>(v)];
    const workload::JobSpec& spec =
        workflow.jobs[static_cast<std::size_t>(v)];
    AdmittedJob job;
    job.ref = workload::WorkflowJobRef{workflow.id, v};
    job.lp_job.uid = workflow.id * 100000 + v;
    job.lp_job.release_slot = static_cast<int>(
        std::floor(window.start_s / slot_seconds + 1e-9));
    job.lp_job.deadline_slot = std::max(
        job.lp_job.release_slot,
        static_cast<int>(
            std::ceil(window.deadline_s / slot_seconds - 1e-9)) -
            1);
    job.lp_job.demand = spec.total_demand();
    job.lp_job.width =
        workload::scale(spec.max_parallel_demand(), slot_seconds);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

AdmissionDecision AdmissionController::evaluate(
    const workload::Workflow& candidate, double now_s) const {
  AdmissionDecision decision;
  DecomposeStatus status = DecomposeStatus::kOk;
  const auto candidate_jobs = decompose_to_jobs(candidate, &status);
  if (!candidate_jobs) {
    decision.reason =
        std::string("decomposition failed: ") + to_string(status);
    trace_decision("evaluate", candidate, now_s, decision);
    return decision;
  }

  const double slot_seconds = config_.cluster.slot_seconds;
  const int now_slot =
      static_cast<int>(std::floor(now_s / slot_seconds + 1e-9));
  std::vector<LpJob> lp_jobs;
  int last_slot = now_slot;
  auto append = [&](const AdmittedJob& job, bool already_admitted) {
    if (job.complete) return;
    LpJob clipped = job.lp_job;
    clipped.release_slot = std::max(clipped.release_slot, now_slot);
    clipped.deadline_slot = std::max(clipped.deadline_slot,
                                     clipped.release_slot);
    if (already_admitted) {
      // Mid-flight jobs may have made progress the controller cannot see
      // (progress feedback is complete_job only). Extend their windows
      // minimally — like the runtime scheduler does for late jobs — so a
      // stale window registers as load, not as hard infeasibility that
      // would block every future admission.
      for (int r = 0; r < workload::kNumResources; ++r) {
        if (clipped.demand[r] > 1e-9 && clipped.width[r] > 1e-9) {
          const int needed = static_cast<int>(
              std::ceil(clipped.demand[r] / clipped.width[r] - 1e-9));
          clipped.deadline_slot = std::max(
              clipped.deadline_slot, clipped.release_slot + needed - 1);
        }
      }
    }
    last_slot = std::max(last_slot, clipped.deadline_slot);
    lp_jobs.push_back(clipped);
  };
  for (const AdmittedJob& job : admitted_) append(job, true);
  for (const AdmittedJob& job : *candidate_jobs) append(job, false);

  const double fraction =
      std::clamp(config_.deadline_cap_fraction, 0.05, 1.0);
  const std::vector<workload::ResourceVec> caps(
      static_cast<std::size_t>(last_slot - now_slot + 1),
      workload::scale(config_.cluster.capacity, slot_seconds * fraction));
  const FlowPlacementResult placement =
      solve_flow_placement(lp_jobs, caps, now_slot);
  decision.peak_load = placement.min_max_level;
  if (std::isinf(placement.min_max_level)) {
    decision.reason =
        "a job cannot fit its window at any load (width-limited)";
    trace_decision("evaluate", candidate, now_s, decision);
    return decision;
  }
  decision.admitted = placement.feasible;
  decision.reason = placement.feasible
                        ? "fits within the deadline capacity"
                        : "would overload the deadline capacity";
  trace_decision("evaluate", candidate, now_s, decision);
  return decision;
}

AdmissionDecision AdmissionController::force_admit(
    const workload::Workflow& candidate, double now_s) {
  AdmissionDecision decision = evaluate(candidate, now_s);
  auto jobs = decompose_to_jobs(candidate, nullptr);
  if (!jobs) return decision;
  for (AdmittedJob& job : *jobs) admitted_.push_back(std::move(job));
  if (obs::enabled()) {
    obs::SpanMeta meta;
    meta.workflow_id = candidate.id;
    meta.deadline_s = candidate.deadline_s;
    admitted_spans_[candidate.id] =
        obs::begin_span("admitted", candidate.name, obs::kNoSpan, now_s, meta);
  }
  trace_decision("force_admit", candidate, now_s, decision);
  return decision;
}

AdmissionDecision AdmissionController::admit(
    const workload::Workflow& candidate, double now_s) {
  AdmissionDecision decision = evaluate(candidate, now_s);
  if (!decision.admitted) return decision;
  auto jobs = decompose_to_jobs(candidate, nullptr);
  for (AdmittedJob& job : *jobs) admitted_.push_back(std::move(job));
  if (obs::enabled()) {
    obs::SpanMeta meta;
    meta.workflow_id = candidate.id;
    meta.deadline_s = candidate.deadline_s;
    admitted_spans_[candidate.id] =
        obs::begin_span("admitted", candidate.name, obs::kNoSpan, now_s, meta);
  }
  trace_decision("admit", candidate, now_s, decision);
  return decision;
}

void AdmissionController::complete_job(int workflow_id, dag::NodeId node,
                                       double now_s) {
  bool any_pending = false;
  for (AdmittedJob& job : admitted_) {
    if (job.ref.workflow_id != workflow_id) continue;
    if (job.ref.node == node) job.complete = true;
    if (!job.complete) any_pending = true;
  }
  if (!any_pending) {
    const auto it = admitted_spans_.find(workflow_id);
    if (it != admitted_spans_.end()) {
      obs::end_span(it->second, now_s);
      admitted_spans_.erase(it);
    }
  }
}

int AdmissionController::admitted_workflows() const {
  std::set<int> ids;
  for (const AdmittedJob& job : admitted_) ids.insert(job.ref.workflow_id);
  return static_cast<int>(ids.size());
}

int AdmissionController::pending_jobs() const {
  int count = 0;
  for (const AdmissionController::AdmittedJob& job : admitted_) {
    if (!job.complete) ++count;
  }
  return count;
}

void AdmissionController::forget_workflow(int workflow_id, double now_s) {
  std::erase_if(admitted_, [workflow_id](const AdmittedJob& job) {
    return job.ref.workflow_id == workflow_id;
  });
  const auto it = admitted_spans_.find(workflow_id);
  if (it != admitted_spans_.end()) {
    obs::end_span(it->second, now_s);
    admitted_spans_.erase(it);
  }
}

void AdmissionController::on_capacity_change(
    const workload::ResourceVec& new_capacity, double now_s) {
  if (workload::fits_within(new_capacity, config_.cluster.capacity, 1e-9) &&
      workload::fits_within(config_.cluster.capacity, new_capacity, 1e-9)) {
    return;  // no change
  }
  config_.cluster.capacity = new_capacity;
  if (obs::enabled()) {
    obs::registry().counter("core.admission.capacity_changes").add();
    obs::TraceEvent event("capacity_change");
    event.field("component", "admission").field("now_s", now_s);
    for (int r = 0; r < workload::kNumResources; ++r) {
      event.field(std::string("capacity_") + workload::resource_name(r),
                  new_capacity[r]);
    }
    obs::emit(event);
  }
}

bool AdmissionController::verify_cluster(
    const workload::ClusterSpec& authoritative) const {
  if (workload::approx_equal(config_.cluster, authoritative)) return true;
  FT_LOG(kWarn) << "admission controller cluster "
                << workload::to_string(config_.cluster)
                << " differs from authoritative "
                << workload::to_string(authoritative);
  if (obs::enabled()) {
    obs::registry().counter("core.admission.config_skew").add();
    obs::emit(obs::TraceEvent("config_skew")
                  .field("component", "admission")
                  .field("configured", workload::to_string(config_.cluster))
                  .field("authoritative",
                         workload::to_string(authoritative)));
  }
  return false;
}

}  // namespace flowtime::core
