#include "core/flow_placement.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/maxflow.h"
#include "util/logging.h"

namespace flowtime::core {

namespace {

constexpr double kTol = 1e-9;

// Per-resource transportation network:
//   source(0) --demand--> job nodes --width--> slot nodes --u*cap--> sink.
struct ResourceNetwork {
  lp::FlowNetwork network;
  int source = 0;
  int sink = 0;
  double total_demand = 0.0;
  std::vector<int> slot_edges;                    // per slot, edge id
  std::vector<std::vector<std::pair<int, int>>> job_slot_edges;
  // job_slot_edges[j] = list of (slot_index, edge_id)

  explicit ResourceNetwork(int nodes) : network(nodes) {}
};

}  // namespace

ResourceFlowLevel solve_resource_flow_level(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, int resource, const FlowPlacementOptions& options) {
  const int r = resource;
  const int num_slots = static_cast<int>(capacity_per_slot.size());
  const int last_slot = first_slot + num_slots - 1;
  ResourceFlowLevel result;
  result.allocation.assign(
      jobs.size(), std::vector<double>(static_cast<std::size_t>(num_slots)));

  // Node layout: 0 = source, 1..J = jobs, J+1..J+T = slots, J+T+1 = sink.
  const int job_base = 1;
  const int slot_base = job_base + static_cast<int>(jobs.size());
  const int sink = slot_base + num_slots;
  ResourceNetwork net(sink + 1);
  net.sink = sink;
  net.job_slot_edges.resize(jobs.size());

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const LpJob& job = jobs[j];
    if (job.demand[r] <= kTol) continue;
    const int begin = std::max(job.release_slot, first_slot);
    const int end = std::min(job.deadline_slot, last_slot);
    if (begin > end) {
      result.any_demand = true;
      result.level = std::numeric_limits<double>::infinity();
      return result;  // empty window: unplaceable
    }
    result.any_demand = true;
    net.total_demand += job.demand[r];
    net.network.add_edge(net.source, job_base + static_cast<int>(j),
                         job.demand[r]);
    for (int t = begin; t <= end; ++t) {
      const int edge = net.network.add_edge(
          job_base + static_cast<int>(j), slot_base + (t - first_slot),
          job.width[r]);
      net.job_slot_edges[j].emplace_back(t - first_slot, edge);
    }
  }
  if (!result.any_demand) {
    result.placeable = true;
    return result;
  }
  for (int t = 0; t < num_slots; ++t) {
    net.slot_edges.push_back(net.network.add_edge(
        slot_base + t, sink,
        capacity_per_slot[static_cast<std::size_t>(t)][r]));
  }

  // Upper bound for u: level at which each slot could hold the entire
  // demand (always enough if widths permit any placement at all).
  double lo = 0.0;
  double hi = 1.0;
  auto feasible_at = [&](double u) {
    for (int t = 0; t < num_slots; ++t) {
      net.network.set_capacity(
          net.slot_edges[static_cast<std::size_t>(t)],
          u * capacity_per_slot[static_cast<std::size_t>(t)][r]);
    }
    const double flow = net.network.max_flow(net.source, net.sink);
    return flow >= net.total_demand - 1e-6;
  };
  // Grow hi until feasible (or give up: width-limited infeasibility).
  int growth = 0;
  while (!feasible_at(hi)) {
    hi *= 2.0;
    if (++growth > 24) {
      result.level = std::numeric_limits<double>::infinity();
      return result;
    }
  }
  for (int i = 0; i < options.max_iterations &&
                  hi - lo > options.level_tolerance;
       ++i) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Final solve at the found level to read the allocation off the edges.
  feasible_at(hi);
  result.placeable = true;
  result.level = hi;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (const auto& [slot_index, edge] : net.job_slot_edges[j]) {
      result.allocation[j][static_cast<std::size_t>(slot_index)] =
          net.network.flow(edge);
    }
  }
  return result;
}

FlowPlacementResult solve_flow_placement(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, const FlowPlacementOptions& options) {
  FlowPlacementResult result;
  const int num_slots = static_cast<int>(capacity_per_slot.size());
  result.allocation.assign(
      jobs.size(),
      std::vector<workload::ResourceVec>(static_cast<std::size_t>(num_slots)));
  result.feasible = true;

  for (int r = 0; r < workload::kNumResources; ++r) {
    const ResourceFlowLevel level = solve_resource_flow_level(
        jobs, capacity_per_slot, first_slot, r, options);
    if (!level.any_demand) continue;
    if (!level.placeable) {
      result.feasible = false;
      result.min_max_level = std::numeric_limits<double>::infinity();
      return result;
    }
    result.min_max_level = std::max(result.min_max_level, level.level);
    if (level.level > 1.0 + options.level_tolerance) result.feasible = false;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      for (int t = 0; t < num_slots; ++t) {
        result.allocation[j][static_cast<std::size_t>(t)][r] =
            level.allocation[j][static_cast<std::size_t>(t)];
      }
    }
  }
  return result;
}

}  // namespace flowtime::core
