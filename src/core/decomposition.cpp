#include "core/decomposition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dag/topology.h"
#include "util/logging.h"

namespace flowtime::core {

namespace {

// Normalized total resource demand of one job: resource-seconds summed over
// resource types after dividing by cluster capacity, which makes CPU-seconds
// and GB-seconds commensurable (the same normalization the LP objective
// uses).
double normalized_demand(const workload::JobSpec& job,
                         const workload::ResourceVec& capacity) {
  const workload::ResourceVec total = job.total_demand();
  double sum = 0.0;
  for (int r = 0; r < workload::kNumResources; ++r) {
    if (capacity[r] > 0.0) sum += total[r] / capacity[r];
  }
  return sum;
}

DecompositionResult failure(DecomposeStatus status) {
  DecompositionResult result;
  result.status = status;
  return result;
}

}  // namespace

const char* to_string(DecomposeStatus status) {
  switch (status) {
    case DecomposeStatus::kOk:
      return "ok";
    case DecomposeStatus::kEmptyWorkflow:
      return "empty_workflow";
    case DecomposeStatus::kCyclicDag:
      return "cyclic_dag";
    case DecomposeStatus::kInvalidWorkflow:
      return "invalid_workflow";
    case DecomposeStatus::kJobExceedsCapacity:
      return "job_exceeds_capacity";
  }
  return "?";
}

DeadlineDecomposer::DeadlineDecomposer(DecompositionConfig config)
    : config_(config) {}

DecompositionResult DeadlineDecomposer::decompose(
    const workload::Workflow& workflow) const {
  if (workflow.dag.num_nodes() == 0) {
    return failure(DecomposeStatus::kEmptyWorkflow);
  }
  const auto levels = dag::level_groups(workflow.dag);
  if (!levels) return failure(DecomposeStatus::kCyclicDag);
  if (!workflow.valid()) return failure(DecomposeStatus::kInvalidWorkflow);

  DecompositionResult result;
  result.levels = *levels;
  const std::size_t num_levels = result.levels.size();

  // Per-level minimum runtime and total normalized demand.
  std::vector<double> min_runtime(num_levels, 0.0);
  std::vector<double> demand(num_levels, 0.0);
  for (std::size_t l = 0; l < num_levels; ++l) {
    for (dag::NodeId v : result.levels[l]) {
      const workload::JobSpec& job =
          workflow.jobs[static_cast<std::size_t>(v)];
      const double runtime = job.min_runtime_s(config_.cluster.capacity);
      if (!std::isfinite(runtime)) {
        FT_LOG(kWarn) << "job " << job.name
                      << " cannot fit the cluster at any parallelism";
        return failure(DecomposeStatus::kJobExceedsCapacity);
      }
      min_runtime[l] = std::max(min_runtime[l], runtime);
      demand[l] += normalized_demand(job, config_.cluster.capacity);
    }
  }
  const double total_min =
      std::accumulate(min_runtime.begin(), min_runtime.end(), 0.0);
  result.min_makespan_s = total_min;

  const double budget = workflow.deadline_s - workflow.start_s;
  const double slack = budget - total_min;
  result.used_fallback =
      slack < 0.0 || config_.mode == DecompositionMode::kCriticalPath;

  result.level_duration_s.assign(num_levels, 0.0);
  if (result.used_fallback) {
    // Critical-path style: the whole budget in proportion to each level's
    // minimum runtime (Yu et al. [7]). With negative slack this still
    // produces windows, just ones the LP may find infeasible — which is the
    // correct signal that the deadline cannot be met.
    for (std::size_t l = 0; l < num_levels; ++l) {
      result.level_duration_s[l] =
          total_min > 0.0 ? budget * min_runtime[l] / total_min
                          : budget / static_cast<double>(num_levels);
    }
  } else {
    const double total_demand =
        std::accumulate(demand.begin(), demand.end(), 0.0);
    for (std::size_t l = 0; l < num_levels; ++l) {
      const double share =
          total_demand > 0.0
              ? demand[l] / total_demand
              : 1.0 / static_cast<double>(num_levels);
      result.level_duration_s[l] = min_runtime[l] + slack * share;
    }
  }

  // Accumulate into absolute windows; parallel jobs inherit their level's.
  result.windows.assign(static_cast<std::size_t>(workflow.dag.num_nodes()),
                        JobWindow{});
  double cursor = workflow.start_s;
  for (std::size_t l = 0; l < num_levels; ++l) {
    const double level_start = cursor;
    // The last level ends exactly at the workflow deadline, absorbing any
    // floating-point residue from the proportional split.
    const double level_end = l + 1 == num_levels
                                 ? workflow.deadline_s
                                 : cursor + result.level_duration_s[l];
    for (dag::NodeId v : result.levels[l]) {
      result.windows[static_cast<std::size_t>(v)] =
          JobWindow{level_start, level_end};
    }
    cursor = level_end;
  }
  return result;
}

}  // namespace flowtime::core
