#include "core/greedy_placement.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::core {

namespace {

// Mirrors the LP formulation: a slot with (effectively) zero capacity is
// never attractive, but dividing by it must not produce inf/NaN keys.
constexpr double kTinyCapacity = 1e-9;
constexpr double kTol = 1e-9;

double normalized_key(const workload::ResourceVec& load,
                      const workload::ResourceVec& cap) {
  double key = 0.0;
  for (int r = 0; r < workload::kNumResources; ++r) {
    const double c = cap[r] > kTinyCapacity ? cap[r] : kTinyCapacity;
    key = std::max(key, load[r] / c);
  }
  return key;
}

}  // namespace

LpSchedule greedy_placement(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot) {
  LpSchedule schedule;
  schedule.first_slot = first_slot;
  schedule.num_slots = static_cast<int>(capacity_per_slot.size());
  const int num_slots = schedule.num_slots;
  schedule.allocation.assign(
      jobs.size(),
      std::vector<workload::ResourceVec>(static_cast<std::size_t>(num_slots),
                                         workload::zeros()));
  schedule.normalized_load.assign(static_cast<std::size_t>(num_slots),
                                  workload::zeros());
  if (num_slots == 0) {
    // No horizon to place into; only vacuously solvable.
    schedule.status = jobs.empty() ? lp::SolveStatus::kOptimal
                                   : lp::SolveStatus::kInfeasible;
    return schedule;
  }
  schedule.status = lp::SolveStatus::kOptimal;

  // Earliest deadline first; release and uid break ties deterministically.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const LpJob& ja = jobs[a];
    const LpJob& jb = jobs[b];
    if (ja.deadline_slot != jb.deadline_slot) {
      return ja.deadline_slot < jb.deadline_slot;
    }
    if (ja.release_slot != jb.release_slot) {
      return ja.release_slot < jb.release_slot;
    }
    return ja.uid < jb.uid;
  });

  // Running resource-seconds packed into each slot.
  std::vector<workload::ResourceVec> load(static_cast<std::size_t>(num_slots),
                                          workload::zeros());
  std::vector<int> picked;  // scratch: candidate slot offsets, re-sorted

  for (const std::size_t j : order) {
    const LpJob& job = jobs[j];

    // Clip the window to the horizon; an impossible window (already past,
    // or entirely beyond the horizon) collapses to the nearest slot so the
    // job still gets the densest placement the horizon allows.
    int lo = job.release_slot - first_slot;
    int hi = job.deadline_slot - first_slot;
    lo = std::clamp(lo, 0, num_slots - 1);
    hi = std::clamp(hi, lo, num_slots - 1);
    const int window = hi - lo + 1;

    // Minimum occupied slots, per the binding resource.
    int needed = 1;
    bool any_demand = false;
    for (int r = 0; r < workload::kNumResources; ++r) {
      if (job.demand[r] <= kTol) continue;
      any_demand = true;
      if (job.width[r] <= kTol) continue;  // degenerate: no per-slot width
      const int n_r =
          static_cast<int>(std::ceil(job.demand[r] / job.width[r] - kTol));
      needed = std::max(needed, n_r);
    }
    if (!any_demand) continue;
    const int n = std::min(needed, window);

    // Water filling: occupy the n least-loaded window slots (ties toward
    // earlier slots), splitting the demand evenly across them. The width
    // cap only binds when the clipped window is shorter than `needed`; the
    // shortfall is simply what an impossible window cannot absorb.
    picked.resize(static_cast<std::size_t>(window));
    std::iota(picked.begin(), picked.end(), lo);
    std::stable_sort(picked.begin(), picked.end(), [&](int a, int b) {
      return normalized_key(load[static_cast<std::size_t>(a)],
                            capacity_per_slot[static_cast<std::size_t>(a)]) <
             normalized_key(load[static_cast<std::size_t>(b)],
                            capacity_per_slot[static_cast<std::size_t>(b)]);
    });
    workload::ResourceVec grant{};
    for (int r = 0; r < workload::kNumResources; ++r) {
      grant[r] = std::min(job.demand[r] / n, job.width[r]);
    }
    for (int i = 0; i < n; ++i) {
      const auto t = static_cast<std::size_t>(picked[static_cast<std::size_t>(i)]);
      schedule.allocation[j][t] = workload::add(schedule.allocation[j][t], grant);
      load[t] = workload::add(load[t], grant);
    }
  }

  for (int t = 0; t < num_slots; ++t) {
    const auto ts = static_cast<std::size_t>(t);
    for (int r = 0; r < workload::kNumResources; ++r) {
      const double c = capacity_per_slot[ts][r] > kTinyCapacity
                           ? capacity_per_slot[ts][r]
                           : kTinyCapacity;
      schedule.normalized_load[ts][r] = load[ts][r] / c;
      schedule.max_normalized_load =
          std::max(schedule.max_normalized_load, schedule.normalized_load[ts][r]);
    }
  }
  schedule.capacity_exceeded = schedule.max_normalized_load > 1.0 + 1e-6;

  if (obs::enabled()) {
    obs::registry().counter("core.greedy_placements").add();
    obs::emit(obs::TraceEvent("greedy_placement")
                  .field("jobs", jobs.size())
                  .field("slots", num_slots)
                  .field("max_normalized_load", schedule.max_normalized_load)
                  .field("capacity_exceeded", schedule.capacity_exceeded));
  }
  return schedule;
}

}  // namespace flowtime::core
