#include "dag/dag.h"

#include <algorithm>

namespace flowtime::dag {

Dag::Dag(int num_nodes)
    : children_(static_cast<std::size_t>(num_nodes)),
      parents_(static_cast<std::size_t>(num_nodes)) {}

NodeId Dag::add_node() {
  children_.emplace_back();
  parents_.emplace_back();
  return num_nodes() - 1;
}

bool Dag::add_edge(NodeId from, NodeId to) {
  if (from == to) return false;
  if (from < 0 || to < 0 || from >= num_nodes() || to >= num_nodes()) {
    return false;
  }
  if (has_edge(from, to)) return false;
  children_[static_cast<std::size_t>(from)].push_back(to);
  parents_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
  return true;
}

bool Dag::has_edge(NodeId from, NodeId to) const {
  if (from < 0 || from >= num_nodes()) return false;
  const auto& c = children_[static_cast<std::size_t>(from)];
  return std::find(c.begin(), c.end(), to) != c.end();
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (in_degree(v) == 0) result.push_back(v);
  }
  return result;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> result;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (out_degree(v) == 0) result.push_back(v);
  }
  return result;
}

bool Dag::is_acyclic() const {
  // Kahn peel: a cycle leaves nodes unpeeled.
  std::vector<int> in_degree_left(static_cast<std::size_t>(num_nodes()));
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    in_degree_left[static_cast<std::size_t>(v)] = in_degree(v);
    if (in_degree(v) == 0) ready.push_back(v);
  }
  int peeled = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    ++peeled;
    for (NodeId c : children(v)) {
      if (--in_degree_left[static_cast<std::size_t>(c)] == 0) {
        ready.push_back(c);
      }
    }
  }
  return peeled == num_nodes();
}

}  // namespace flowtime::dag
