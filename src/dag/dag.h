// Directed acyclic graph container used for workflow job dependencies
// (paper §II-A: each workflow W_i carries the DAG P_i over its jobs).
//
// Nodes are dense integer ids [0, num_nodes). The container itself allows
// arbitrary directed edges; acyclicity is checked by validate()/is_acyclic()
// and by the topology routines, which fail loudly on cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace flowtime::dag {

using NodeId = int;

/// Adjacency-list DAG. Parallel edges are collapsed; self-loops rejected.
class Dag {
 public:
  Dag() = default;
  explicit Dag(int num_nodes);

  /// Appends an isolated node; returns its id.
  NodeId add_node();

  /// Adds the dependency edge `from -> to` (to depends on from).
  /// Returns false (and changes nothing) for self-loops, out-of-range ids
  /// or duplicate edges.
  bool add_edge(NodeId from, NodeId to);

  int num_nodes() const { return static_cast<int>(children_.size()); }
  int num_edges() const { return num_edges_; }

  const std::vector<NodeId>& children(NodeId node) const {
    return children_[static_cast<std::size_t>(node)];
  }
  const std::vector<NodeId>& parents(NodeId node) const {
    return parents_[static_cast<std::size_t>(node)];
  }

  bool has_edge(NodeId from, NodeId to) const;

  /// Nodes with no parents / no children.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// True when the edge set has no directed cycle.
  bool is_acyclic() const;

  int in_degree(NodeId node) const {
    return static_cast<int>(parents_[static_cast<std::size_t>(node)].size());
  }
  int out_degree(NodeId node) const {
    return static_cast<int>(children_[static_cast<std::size_t>(node)].size());
  }

 private:
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::vector<NodeId>> parents_;
  int num_edges_ = 0;
};

}  // namespace flowtime::dag
