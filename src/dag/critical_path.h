// Critical-path analysis over node-weighted DAGs.
//
// Used by the decomposer's fallback path (paper §IV-B footnote 1: when the
// deadline leaves no slack, FlowTime decomposes along the critical path as in
// Yu, Buyya & Tham 2005 [7]) and by the baselines that reason about a
// workflow's minimal makespan.
#pragma once

#include <optional>
#include <vector>

#include "dag/dag.h"

namespace flowtime::dag {

struct CriticalPathResult {
  double length = 0.0;             // total weight along the heaviest path
  std::vector<NodeId> path;        // nodes on one heaviest path, in order
  std::vector<double> earliest;    // earliest start per node (weights before)
  std::vector<double> path_until;  // heaviest path length ending at node
                                   // (inclusive of the node's own weight)
};

/// Computes the heaviest path where each node contributes `weight[node]`.
/// Weights must be nonnegative. nullopt if the graph has a cycle or the
/// weight vector has the wrong size.
std::optional<CriticalPathResult> critical_path(
    const Dag& dag, const std::vector<double>& weight);

}  // namespace flowtime::dag
