// Topological machinery for deadline decomposition (paper §IV-A).
//
// FlowTime's decomposer does not operate on a plain topological *order* but
// on a sequence of *node sets*: jobs with no dependency between them are
// grouped so they share one decomposed deadline (the paper's modified Kahn
// output `{1, {2,...,n}, n+1}` for a fork-join graph, Fig. 3).
#pragma once

#include <optional>
#include <vector>

#include "dag/dag.h"

namespace flowtime::dag {

/// Plain Kahn topological order (Kahn 1962 [8]); nullopt if the graph has a
/// cycle. Deterministic: ready nodes are consumed in ascending id order.
std::optional<std::vector<NodeId>> topological_order(const Dag& dag);

/// The paper's grouped variant: level k holds every node whose longest
/// dependency chain from a source has k edges — exactly the set of nodes
/// Kahn's peeling releases in round k. Nodes inside one level are mutually
/// independent and receive one shared decomposed deadline.
/// nullopt if the graph has a cycle.
std::optional<std::vector<std::vector<NodeId>>> level_groups(const Dag& dag);

/// level_groups flattened to a per-node level index; nullopt on a cycle.
std::optional<std::vector<int>> node_levels(const Dag& dag);

/// True if `descendant` is reachable from `ancestor` by directed edges.
bool reachable(const Dag& dag, NodeId ancestor, NodeId descendant);

/// Transitive reduction check helper: true when edge (u, v) is redundant,
/// i.e. v is reachable from u through some longer path.
bool edge_is_transitive(const Dag& dag, NodeId from, NodeId to);

}  // namespace flowtime::dag
