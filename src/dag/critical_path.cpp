#include "dag/critical_path.h"

#include <algorithm>

#include "dag/topology.h"

namespace flowtime::dag {

std::optional<CriticalPathResult> critical_path(
    const Dag& dag, const std::vector<double>& weight) {
  if (static_cast<int>(weight.size()) != dag.num_nodes()) return std::nullopt;
  const auto order = topological_order(dag);
  if (!order) return std::nullopt;

  CriticalPathResult result;
  const auto n = static_cast<std::size_t>(dag.num_nodes());
  result.earliest.assign(n, 0.0);
  result.path_until.assign(n, 0.0);
  std::vector<NodeId> best_parent(n, -1);

  for (NodeId v : *order) {
    double start = 0.0;
    NodeId argmax = -1;
    for (NodeId p : dag.parents(v)) {
      const double candidate = result.path_until[static_cast<std::size_t>(p)];
      if (candidate > start) {
        start = candidate;
        argmax = p;
      }
    }
    result.earliest[static_cast<std::size_t>(v)] = start;
    result.path_until[static_cast<std::size_t>(v)] =
        start + weight[static_cast<std::size_t>(v)];
    best_parent[static_cast<std::size_t>(v)] = argmax;
  }

  NodeId tail = -1;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (tail < 0 ||
        result.path_until[static_cast<std::size_t>(v)] >
            result.path_until[static_cast<std::size_t>(tail)]) {
      tail = v;
    }
  }
  if (tail >= 0) {
    result.length = result.path_until[static_cast<std::size_t>(tail)];
    for (NodeId v = tail; v >= 0; v = best_parent[static_cast<std::size_t>(v)]) {
      result.path.push_back(v);
    }
    std::reverse(result.path.begin(), result.path.end());
  }
  return result;
}

}  // namespace flowtime::dag
