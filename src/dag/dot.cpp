#include "dag/dot.h"

#include <sstream>

namespace flowtime::dag {

std::string to_dot(const Dag& dag, const std::string& graph_name) {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  out << "  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    out << "  n" << v << ";\n";
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    for (NodeId c : dag.children(v)) {
      out << "  n" << v << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace flowtime::dag
