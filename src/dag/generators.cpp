#include "dag/generators.h"

#include <algorithm>
#include <cassert>

namespace flowtime::dag {

Dag make_chain(int n) {
  assert(n >= 1);
  Dag dag(n);
  for (int v = 0; v + 1 < n; ++v) dag.add_edge(v, v + 1);
  return dag;
}

Dag make_fork_join(int width) {
  assert(width >= 1);
  Dag dag(width + 2);
  const NodeId sink = width + 1;
  for (int k = 1; k <= width; ++k) {
    dag.add_edge(0, k);
    dag.add_edge(k, sink);
  }
  return dag;
}

Dag make_diamond(int left_length, int right_length) {
  assert(left_length >= 1 && right_length >= 1);
  Dag dag(left_length + right_length + 2);
  const NodeId sink = left_length + right_length + 1;
  NodeId prev = 0;
  for (int k = 0; k < left_length; ++k) {
    const NodeId v = 1 + k;
    dag.add_edge(prev, v);
    prev = v;
  }
  dag.add_edge(prev, sink);
  prev = 0;
  for (int k = 0; k < right_length; ++k) {
    const NodeId v = 1 + left_length + k;
    dag.add_edge(prev, v);
    prev = v;
  }
  dag.add_edge(prev, sink);
  return dag;
}

Dag make_random_layered(util::Rng& rng, int num_nodes, int num_layers,
                        int target_edges) {
  assert(num_nodes >= 1);
  num_layers = std::clamp(num_layers, 1, num_nodes);
  Dag dag(num_nodes);

  // Assign nodes to layers: one guaranteed per layer, rest uniform.
  std::vector<int> layer_of(static_cast<std::size_t>(num_nodes));
  for (int v = 0; v < num_layers; ++v) layer_of[static_cast<std::size_t>(v)] = v;
  for (int v = num_layers; v < num_nodes; ++v) {
    layer_of[static_cast<std::size_t>(v)] =
        static_cast<int>(rng.uniform_int(0, num_layers - 1));
  }
  std::vector<std::vector<NodeId>> layers(
      static_cast<std::size_t>(num_layers));
  for (int v = 0; v < num_nodes; ++v) {
    layers[static_cast<std::size_t>(layer_of[static_cast<std::size_t>(v)])]
        .push_back(v);
  }

  // Connectivity: every node beyond the first layer gets a random parent
  // from the previous non-empty layer.
  int last_nonempty = 0;
  for (int l = 1; l < num_layers; ++l) {
    for (NodeId v : layers[static_cast<std::size_t>(l)]) {
      const auto& pool = layers[static_cast<std::size_t>(last_nonempty)];
      if (!pool.empty()) {
        dag.add_edge(pool[static_cast<std::size_t>(rng.uniform_int(
                         0, static_cast<int>(pool.size()) - 1))],
                     v);
      }
    }
    if (!layers[static_cast<std::size_t>(l)].empty()) last_nonempty = l;
  }

  // Extra forward edges until the target is met or the space is exhausted.
  std::vector<std::pair<NodeId, NodeId>> candidates;
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = 0; v < num_nodes; ++v) {
      if (layer_of[static_cast<std::size_t>(u)] <
          layer_of[static_cast<std::size_t>(v)]) {
        candidates.emplace_back(u, v);
      }
    }
  }
  std::shuffle(candidates.begin(), candidates.end(), rng.engine());
  for (const auto& [u, v] : candidates) {
    if (dag.num_edges() >= target_edges) break;
    dag.add_edge(u, v);
  }
  return dag;
}

Dag make_montage_like(int width) {
  assert(width >= 2);
  // 0: source; 1..w: project; w+1..2w-1: diff of neighbours; 2w: concat;
  // 2w+1, 2w+2: background-fit + final mosaic tail.
  Dag dag(2 * width + 3);
  const NodeId concat = 2 * width;
  for (int k = 1; k <= width; ++k) dag.add_edge(0, k);
  for (int k = 0; k + 1 < width; ++k) {
    const NodeId diff = width + 1 + k;
    dag.add_edge(1 + k, diff);
    dag.add_edge(2 + k, diff);
    dag.add_edge(diff, concat);
  }
  dag.add_edge(concat, concat + 1);
  dag.add_edge(concat + 1, concat + 2);
  return dag;
}

Dag make_epigenomics_like(int lanes, int depth) {
  assert(lanes >= 1 && depth >= 1);
  Dag dag(lanes * depth + 2);
  const NodeId sink = lanes * depth + 1;
  for (int lane = 0; lane < lanes; ++lane) {
    NodeId prev = 0;
    for (int d = 0; d < depth; ++d) {
      const NodeId v = 1 + lane * depth + d;
      dag.add_edge(prev, v);
      prev = v;
    }
    dag.add_edge(prev, sink);
  }
  return dag;
}

Dag make_cybershake_like(int width) {
  assert(width >= 1);
  // 0,1: SGT generators; 2..w+1: synthesis; w+2..2w+1: peak extraction;
  // 2w+2, 2w+3: two aggregators; 2w+4: sink.
  Dag dag(2 * width + 5);
  const NodeId agg0 = 2 * width + 2;
  const NodeId agg1 = 2 * width + 3;
  const NodeId sink = 2 * width + 4;
  for (int k = 0; k < width; ++k) {
    const NodeId synth = 2 + k;
    const NodeId peak = width + 2 + k;
    dag.add_edge(0, synth);
    dag.add_edge(1, synth);
    dag.add_edge(synth, peak);
    dag.add_edge(synth, agg0);
    dag.add_edge(peak, agg1);
  }
  dag.add_edge(agg0, sink);
  dag.add_edge(agg1, sink);
  return dag;
}

Dag make_ligo_like(int groups, int width) {
  assert(groups >= 1 && width >= 1);
  Dag dag(1 + groups * (width + 2) + 1);
  const NodeId sink = dag.num_nodes() - 1;
  for (int g = 0; g < groups; ++g) {
    const NodeId splitter = 1 + g * (width + 2);
    const NodeId coalesce = splitter + width + 1;
    dag.add_edge(0, splitter);
    for (int k = 1; k <= width; ++k) {
      dag.add_edge(splitter, splitter + k);
      dag.add_edge(splitter + k, coalesce);
    }
    dag.add_edge(coalesce, sink);
  }
  return dag;
}

Dag make_sipht_like(int branches) {
  assert(branches >= 1);
  Dag dag(1 + 2 * branches + 1);
  const NodeId sink = dag.num_nodes() - 1;
  for (int b = 0; b < branches; ++b) {
    const NodeId first = 1 + 2 * b;
    dag.add_edge(0, first);
    dag.add_edge(first, first + 1);
    dag.add_edge(first + 1, sink);
  }
  return dag;
}

}  // namespace flowtime::dag
