#include "dag/topology.h"

#include <algorithm>
#include <queue>

namespace flowtime::dag {

std::optional<std::vector<NodeId>> topological_order(const Dag& dag) {
  std::vector<int> in_left(static_cast<std::size_t>(dag.num_nodes()));
  // Min-heap gives a deterministic order independent of edge insertion order.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>> ready;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    in_left[static_cast<std::size_t>(v)] = dag.in_degree(v);
    if (dag.in_degree(v) == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(dag.num_nodes()));
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (NodeId c : dag.children(v)) {
      if (--in_left[static_cast<std::size_t>(c)] == 0) ready.push(c);
    }
  }
  if (static_cast<int>(order.size()) != dag.num_nodes()) return std::nullopt;
  return order;
}

std::optional<std::vector<int>> node_levels(const Dag& dag) {
  const auto order = topological_order(dag);
  if (!order) return std::nullopt;
  std::vector<int> level(static_cast<std::size_t>(dag.num_nodes()), 0);
  for (NodeId v : *order) {
    for (NodeId p : dag.parents(v)) {
      level[static_cast<std::size_t>(v)] =
          std::max(level[static_cast<std::size_t>(v)],
                   level[static_cast<std::size_t>(p)] + 1);
    }
  }
  return level;
}

std::optional<std::vector<std::vector<NodeId>>> level_groups(const Dag& dag) {
  const auto levels = node_levels(dag);
  if (!levels) return std::nullopt;
  const int max_level =
      dag.num_nodes() == 0
          ? -1
          : *std::max_element(levels->begin(), levels->end());
  std::vector<std::vector<NodeId>> groups(
      static_cast<std::size_t>(max_level + 1));
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    groups[static_cast<std::size_t>((*levels)[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  return groups;
}

bool reachable(const Dag& dag, NodeId ancestor, NodeId descendant) {
  if (ancestor == descendant) return true;
  std::vector<bool> seen(static_cast<std::size_t>(dag.num_nodes()), false);
  std::vector<NodeId> stack{ancestor};
  seen[static_cast<std::size_t>(ancestor)] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId c : dag.children(v)) {
      if (c == descendant) return true;
      if (!seen[static_cast<std::size_t>(c)]) {
        seen[static_cast<std::size_t>(c)] = true;
        stack.push_back(c);
      }
    }
  }
  return false;
}

bool edge_is_transitive(const Dag& dag, NodeId from, NodeId to) {
  if (!dag.has_edge(from, to)) return false;
  for (NodeId mid : dag.children(from)) {
    if (mid != to && reachable(dag, mid, to)) return true;
  }
  return false;
}

}  // namespace flowtime::dag
