// Graphviz DOT export for DAGs — debugging and documentation aid
// (`dot -Tpng graph.dot -o graph.png`). Workflow-aware rendering (job
// labels, level ranks) lives in workload/dot.h.
#pragma once

#include <string>

#include "dag/dag.h"

namespace flowtime::dag {

/// Bare structure: node ids and edges.
std::string to_dot(const Dag& dag, const std::string& graph_name = "dag");

}  // namespace flowtime::dag
