// DAG shape generators.
//
// The paper evaluates on recurring analytics workflows and cites the
// Bharathi et al. characterization of scientific workflows [16] for DAG
// shapes; Fig. 6 sweeps random DAGs from 10 to 200 nodes and up to ~6000
// edges. These generators produce those families deterministically from a
// seed. They build shape only; job sizing lives in the workload module.
#pragma once

#include "dag/dag.h"
#include "util/rng.h"

namespace flowtime::dag {

/// j_0 -> j_1 -> ... -> j_{n-1}. Requires n >= 1.
Dag make_chain(int n);

/// The paper's Fig. 3 graph: one source, `width` mutually independent middle
/// jobs, one sink. Node 0 is the source, node width+1 the sink.
Dag make_fork_join(int width);

/// Source, two independent branches of the given lengths, sink.
Dag make_diamond(int left_length, int right_length);

/// Random layered DAG: `num_nodes` spread over `num_layers` layers, edges
/// always point from lower to higher layers, adjacent layers stay connected
/// (every non-first-layer node gets >= 1 parent), then extra edges are added
/// until `target_edges` (clamped to the maximum possible) is reached.
Dag make_random_layered(util::Rng& rng, int num_nodes, int num_layers,
                        int target_edges);

/// Montage-like: fan-out to `width` projections, neighbour-overlap diff
/// layer, single concat, short reduction tail.
Dag make_montage_like(int width);

/// Epigenomics-like: `lanes` parallel chains of `depth` jobs between a
/// common split and merge.
Dag make_epigenomics_like(int lanes, int depth);

/// CyberShake-like: two generator roots feeding `width` synthesis pairs that
/// merge into two aggregators and one sink.
Dag make_cybershake_like(int width);

/// LIGO-inspiral-like: `groups` independent template banks, each fanning a
/// splitter out to `width` inspiral jobs and coalescing, all merging into
/// one final sink. Nodes: 1 + groups*(width+2) + 1.
Dag make_ligo_like(int groups, int width);

/// SIPHT-like: `branches` independent two-stage searches (pair of chained
/// jobs) converging on a single final annotation job, plus a common source.
/// Nodes: 1 + 2*branches + 1.
Dag make_sipht_like(int branches);

}  // namespace flowtime::dag
