#include "lp/lambda.h"

#include <cmath>

#include "lp/simplex.h"
#include "util/logging.h"

namespace flowtime::lp {

int append_lambda_representation(LpProblem& problem,
                                 const std::vector<RowEntry>& y_entries,
                                 int domain_min, int domain_max,
                                 const std::function<double(int)>& f) {
  const int first_lambda = problem.num_columns();
  std::vector<RowEntry> convexity;      // Σ λ_j = 1
  std::vector<RowEntry> link = y_entries;  // y - Σ j λ_j = 0
  for (int j = domain_min; j <= domain_max; ++j) {
    const int column = problem.add_column(f(j), 0.0, 1.0,
                                          "lambda_" + std::to_string(j));
    convexity.push_back(RowEntry{column, 1.0});
    link.push_back(RowEntry{column, -static_cast<double>(j)});
  }
  problem.add_row(RowSense::kEqual, 1.0, std::move(convexity), "convexity");
  problem.add_row(RowSense::kEqual, 0.0, std::move(link), "lambda_link");
  return first_lambda;
}

ScalarizedResult solve_scalarized_lexmin(const LpProblem& base,
                                         const std::vector<LoadRow>& loads,
                                         double k_base) {
  ScalarizedResult result;
  LpProblem p = base;
  for (int j = 0; j < p.num_columns(); ++j) p.set_objective_coeff(j, 0.0);

  for (const LoadRow& load : loads) {
    const int cap = static_cast<int>(std::ceil(load.normalizer - 1e-9));
    if (cap <= 0 || cap > 64) {
      FT_LOG(kWarn) << "scalarized lexmin: normalizer " << load.normalizer
                    << " out of the supported toy range";
      result.status = SolveStatus::kNumericalFailure;
      return result;
    }
    // z_k column equals the load expression; λ-represent K^{z/C} over it.
    const int z = p.add_column(0.0, 0.0, cap, "z");
    std::vector<RowEntry> z_def = load.entries;
    z_def.push_back(RowEntry{z, -1.0});
    p.add_row(RowSense::kEqual, 0.0, std::move(z_def), "z_def");
    const double normalizer = load.normalizer;
    append_lambda_representation(
        p, {RowEntry{z, 1.0}}, 0, cap, [k_base, normalizer](int j) {
          return std::pow(k_base, static_cast<double>(j) / normalizer);
        });
  }

  SimplexSolver solver;
  const Solution s = solver.solve(p);
  result.status = s.status;
  if (!s.optimal()) return result;
  result.objective = s.objective;
  result.x.assign(s.x.begin(), s.x.begin() + base.num_columns());
  result.load.reserve(loads.size());
  for (const LoadRow& load : loads) {
    double value = 0.0;
    for (const RowEntry& e : load.entries) {
      value += e.coeff * result.x[static_cast<std::size_t>(e.column)];
    }
    result.load.push_back(value / load.normalizer);
  }
  return result;
}

}  // namespace flowtime::lp
