#include "lp/solve_profile.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::lp {

namespace {

// The thread's active profile. Written only by ScopedSolveProfile on this
// thread; read by the simplex/lexmin engines running on the same thread.
thread_local SolveProfile* t_current = nullptr;

}  // namespace

void SolveProfile::add(const SolveProfile& other) {
  pricing_s += other.pricing_s;
  ratio_test_s += other.ratio_test_s;
  basis_update_s += other.basis_update_s;
  refactor_s += other.refactor_s;
  solves += other.solves;
  pivots += other.pivots;
  degenerate_pivots += other.degenerate_pivots;
  bound_flips += other.bound_flips;
  refactorizations += other.refactorizations;
  basis_patches += other.basis_patches;
  lexmin_rounds += other.lexmin_rounds;
}

SolveProfile* current_profile() { return t_current; }

ScopedSolveProfile::ScopedSolveProfile(std::string_view context, int slot)
    : context_(context), slot_(slot), active_(t_current == nullptr) {
  if (active_) t_current = &profile_;
}

ScopedSolveProfile::~ScopedSolveProfile() {
  if (!active_) return;
  t_current = nullptr;
  if (!obs::enabled()) return;
  // Nothing ran under the scope (e.g. an empty replan): skip the merge so
  // zero-sample profiles do not dilute the histograms.
  if (profile_.solves == 0 && profile_.pivots == 0 &&
      profile_.lexmin_rounds == 0) {
    return;
  }
  obs::Registry& reg = obs::registry();
  reg.counter("lp.simplex.degenerate_pivots").add(profile_.degenerate_pivots);
  reg.counter("lp.simplex.bound_flips").add(profile_.bound_flips);
  reg.counter("lp.simplex.refactorizations").add(profile_.refactorizations);
  reg.counter("lp.simplex.basis_patches").add(profile_.basis_patches);
  reg.histogram("lp.profile.pricing_seconds").observe(profile_.pricing_s);
  reg.histogram("lp.profile.ratio_test_seconds")
      .observe(profile_.ratio_test_s);
  reg.histogram("lp.profile.basis_update_seconds")
      .observe(profile_.basis_update_s);
  reg.histogram("lp.profile.refactor_seconds").observe(profile_.refactor_s);
  obs::emit(obs::TraceEvent("solve_profile")
                .field("context", context_)
                .field("slot", slot_)
                .field("solves", profile_.solves)
                .field("pivots", profile_.pivots)
                .field("degenerate_pivots", profile_.degenerate_pivots)
                .field("bound_flips", profile_.bound_flips)
                .field("refactorizations", profile_.refactorizations)
                .field("basis_patches", profile_.basis_patches)
                .field("lexmin_rounds", profile_.lexmin_rounds)
                .field("pricing_s", profile_.pricing_s)
                .field("ratio_test_s", profile_.ratio_test_s)
                .field("basis_update_s", profile_.basis_update_s)
                .field("refactor_s", profile_.refactor_s)
                .field("wall_s", profile_.phase_total_s()));
}

}  // namespace flowtime::lp
