// Max-flow solver (Dinic's algorithm).
//
// The scheduling LP's constraint matrix is the incidence structure of a
// bipartite job/slot graph, so placement feasibility and the first lexmin
// level can be answered by maximum flow instead of simplex — asymptotically
// much faster for the first round. core/flow_placement.h builds on this;
// here is just a clean, reusable max-flow engine on double capacities.
#pragma once

#include <vector>

namespace flowtime::lp {

/// Directed flow network with double capacities. Nodes are dense ints.
class FlowNetwork {
 public:
  explicit FlowNetwork(int num_nodes);

  /// Adds a directed edge with the given capacity; returns an edge id that
  /// can be used to query its flow after solving.
  int add_edge(int from, int to, double capacity);

  int num_nodes() const { return static_cast<int>(head_.size()); }

  /// Computes the maximum flow from source to sink (Dinic). Can be called
  /// repeatedly after add_edge/set_capacity; flow state resets each call.
  double max_flow(int source, int sink);

  /// Flow routed on edge `edge_id` by the last max_flow call.
  double flow(int edge_id) const;

  /// Rewrites one FORWARD edge's capacity (used by parametric searches).
  /// `edge_id` must be an id returned by add_edge — ids are even; the odd
  /// companion ids address the internal reverse edges, whose residuals
  /// max_flow resets unconditionally, so a capacity written there would be
  /// silently discarded. Returns false and leaves the network unchanged for
  /// a reverse/out-of-range id or a negative capacity (and asserts in debug
  /// builds); returns true on success.
  bool set_capacity(int edge_id, double capacity);

 private:
  struct Edge {
    int to = 0;
    double capacity = 0.0;
    double residual = 0.0;
  };

  bool build_levels(int source, int sink);
  double push(int node, int sink, double limit);

  std::vector<std::vector<int>> head_;  // node -> edge ids (incl. reverse)
  std::vector<Edge> edges_;             // edge 2k = forward, 2k+1 = reverse
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace flowtime::lp
