// The paper's λ-representation and scalarized lexmin objective
// (§V-B, Eq. (6)-(9) and Lemma 1).
//
// Lemma 1 turns the lexicographic min-max objective into a single scalar:
// minimizing  g(u) = Σ_i K^{u_i}  (K = |T||R|) over integer vectors yields
// the lexicographically minimal one. Because K^{u} is separable convex, the
// λ-representation (Eq. (8)-(9)) models it with an LP whose matrix stays
// totally unimodular, so the whole construction remains an exact LP.
//
// Production FlowTime does NOT use this route — K^{u} overflows doubles for
// realistic K — but implementing it at small scale lets the tests verify
// Lemma 1 empirically: the scalarized optimum must match the iterative
// LexMinMaxSolver on every instance where both are computable.
#pragma once

#include <functional>
#include <vector>

#include "lp/lexmin.h"
#include "lp/model.h"

namespace flowtime::lp {

/// Appends the λ-representation of a separable convex term f(y) to
/// `problem`, where y = Σ entries over existing columns and y ranges over
/// the integer domain [domain_min, domain_max]:
///
///     y - Σ_j j·λ_j = 0,   Σ_j λ_j = 1,   λ_j >= 0,
///     objective += Σ_j f(j)·λ_j.
///
/// Returns the index of the first λ column. For convex f the LP relaxation
/// automatically selects adjacent breakpoints (no integrality constraint
/// needed), which is exactly the paper's Eq. (8)-(9) device.
int append_lambda_representation(LpProblem& problem,
                                 const std::vector<RowEntry>& y_entries,
                                 int domain_min, int domain_max,
                                 const std::function<double(int)>& f);

/// Solves the paper's scalarized objective directly:
///
///     min Σ_k K^{z_k / C_k}   s.t. base constraints, z_k = load_k(x),
///
/// with each z_k λ-represented over the integer domain [0, ceil(C_k)].
/// Loads' normalizers must be integral and small enough that K^{z/C} fits a
/// double (the callers are tests on tiny instances). The returned Solution
/// carries the base problem's columns in x.
struct ScalarizedResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  std::vector<double> x;     // base columns only
  std::vector<double> load;  // normalized load per LoadRow
  double objective = 0.0;    // Σ K^{z/C}
};

ScalarizedResult solve_scalarized_lexmin(const LpProblem& base,
                                         const std::vector<LoadRow>& loads,
                                         double k_base);

}  // namespace flowtime::lp
