#include "lp/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace flowtime::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration_limit";
    case SolveStatus::kNumericalFailure:
      return "numerical_failure";
    case SolveStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

int LpProblem::add_column(double objective, double lower, double upper,
                          std::string name) {
  assert(lower <= upper && "variable bounds crossed");
  columns_.push_back(Column{objective, lower, upper, std::move(name)});
  col_entries_.emplace_back();
  return num_columns() - 1;
}

int LpProblem::add_row(RowSense sense, double rhs,
                       std::vector<RowEntry> entries, std::string name) {
  // Merge duplicate columns so solvers can assume one entry per column.
  std::map<int, double> merged;
  for (const RowEntry& e : entries) {
    assert(e.column >= 0 && e.column < num_columns());
    merged[e.column] += e.coeff;
  }
  std::vector<RowEntry> clean;
  clean.reserve(merged.size());
  for (const auto& [column, coeff] : merged) {
    if (coeff != 0.0) clean.push_back(RowEntry{column, coeff});
  }
  const int row = num_rows();
  // Rows only ever grow, so appending keeps each column's entries sorted.
  for (const RowEntry& e : clean) {
    col_entries_[static_cast<std::size_t>(e.column)].push_back(
        ColEntry{row, e.coeff});
  }
  rows_.push_back(Row{sense, rhs, std::move(clean), std::move(name)});
  return num_rows() - 1;
}

void LpProblem::set_row(int row, RowSense sense, double rhs) {
  auto& r = rows_[static_cast<std::size_t>(row)];
  r.sense = sense;
  r.rhs = rhs;
}

void LpProblem::set_bounds(int column, double lower, double upper) {
  assert(lower <= upper && "variable bounds crossed");
  auto& c = columns_[static_cast<std::size_t>(column)];
  c.lower = lower;
  c.upper = upper;
}

void LpProblem::set_objective_coeff(int column, double coeff) {
  columns_[static_cast<std::size_t>(column)].objective = coeff;
}

void LpProblem::set_row_coeff(int row, int column, double coeff) {
  assert(column >= 0 && column < num_columns());
  auto& entries = rows_[static_cast<std::size_t>(row)].entries;
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->column != column) continue;
    if (coeff == 0.0) {
      entries.erase(it);
    } else {
      it->coeff = coeff;
    }
    set_col_coeff(column, row, coeff);
    return;
  }
  if (coeff != 0.0) {
    entries.push_back(RowEntry{column, coeff});
    set_col_coeff(column, row, coeff);
  }
}

void LpProblem::set_col_coeff(int column, int row, double coeff) {
  auto& entries = col_entries_[static_cast<std::size_t>(column)];
  // Keep row order so iteration order stays independent of mutation history.
  auto it = std::lower_bound(
      entries.begin(), entries.end(), row,
      [](const ColEntry& e, int r) { return e.row < r; });
  if (it != entries.end() && it->row == row) {
    if (coeff == 0.0) {
      entries.erase(it);
    } else {
      it->coeff = coeff;
    }
  } else if (coeff != 0.0) {
    entries.insert(it, ColEntry{row, coeff});
  }
}

double LpProblem::row_value(int row, const std::vector<double>& x) const {
  const auto& r = rows_[static_cast<std::size_t>(row)];
  double value = 0.0;
  for (const RowEntry& e : r.entries) {
    value += e.coeff * x[static_cast<std::size_t>(e.column)];
  }
  return value;
}

bool LpProblem::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_columns()) return false;
  for (int j = 0; j < num_columns(); ++j) {
    const auto& c = columns_[static_cast<std::size_t>(j)];
    const double v = x[static_cast<std::size_t>(j)];
    if (v < c.lower - tol || v > c.upper + tol) return false;
  }
  for (int i = 0; i < num_rows(); ++i) {
    const auto& r = rows_[static_cast<std::size_t>(i)];
    const double lhs = row_value(i, x);
    switch (r.sense) {
      case RowSense::kLessEqual:
        if (lhs > r.rhs + tol) return false;
        break;
      case RowSense::kEqual:
        if (std::abs(lhs - r.rhs) > tol) return false;
        break;
      case RowSense::kGreaterEqual:
        if (lhs < r.rhs - tol) return false;
        break;
    }
  }
  return true;
}

double LpProblem::objective_value(const std::vector<double>& x) const {
  double value = 0.0;
  for (int j = 0; j < num_columns(); ++j) {
    value += columns_[static_cast<std::size_t>(j)].objective *
             x[static_cast<std::size_t>(j)];
  }
  return value;
}

}  // namespace flowtime::lp
