#include "lp/maxflow.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace flowtime::lp {

namespace {
constexpr double kEps = 1e-9;
}

FlowNetwork::FlowNetwork(int num_nodes)
    : head_(static_cast<std::size_t>(num_nodes)) {}

int FlowNetwork::add_edge(int from, int to, double capacity) {
  const int id = static_cast<int>(edges_.size());
  edges_.push_back(Edge{to, capacity, capacity});
  edges_.push_back(Edge{from, 0.0, 0.0});
  head_[static_cast<std::size_t>(from)].push_back(id);
  head_[static_cast<std::size_t>(to)].push_back(id + 1);
  return id;
}

bool FlowNetwork::set_capacity(int edge_id, double capacity) {
  // Odd ids are the internal reverse edges: max_flow's reset loop zeroes
  // their residuals regardless of stored capacity, so accepting a write
  // here would silently discard it mid-parametric-search.
  assert(edge_id >= 0 && edge_id < static_cast<int>(edges_.size()) &&
         "set_capacity: edge id out of range");
  assert(edge_id % 2 == 0 &&
         "set_capacity: reverse-edge id (ids from add_edge are even)");
  assert(capacity >= 0.0 && "set_capacity: negative capacity");
  if (edge_id < 0 || edge_id >= static_cast<int>(edges_.size()) ||
      edge_id % 2 != 0 || !(capacity >= 0.0)) {
    return false;
  }
  edges_[static_cast<std::size_t>(edge_id)].capacity = capacity;
  return true;
}

double FlowNetwork::flow(int edge_id) const {
  const Edge& e = edges_[static_cast<std::size_t>(edge_id)];
  return e.capacity - e.residual;
}

bool FlowNetwork::build_levels(int source, int sink) {
  level_.assign(head_.size(), -1);
  std::queue<int> queue;
  queue.push(source);
  level_[static_cast<std::size_t>(source)] = 0;
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop();
    for (int id : head_[static_cast<std::size_t>(node)]) {
      const Edge& e = edges_[static_cast<std::size_t>(id)];
      if (e.residual > kEps && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(node)] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

double FlowNetwork::push(int node, int sink, double limit) {
  if (node == sink) return limit;
  for (std::size_t& i = iter_[static_cast<std::size_t>(node)];
       i < head_[static_cast<std::size_t>(node)].size(); ++i) {
    const int id = head_[static_cast<std::size_t>(node)][i];
    Edge& e = edges_[static_cast<std::size_t>(id)];
    if (e.residual <= kEps ||
        level_[static_cast<std::size_t>(e.to)] !=
            level_[static_cast<std::size_t>(node)] + 1) {
      continue;
    }
    const double pushed =
        push(e.to, sink, std::min(limit, e.residual));
    if (pushed > kEps) {
      e.residual -= pushed;
      edges_[static_cast<std::size_t>(id ^ 1)].residual += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double FlowNetwork::max_flow(int source, int sink) {
  // Reset residuals to capacities.
  for (std::size_t id = 0; id < edges_.size(); id += 2) {
    edges_[id].residual = edges_[id].capacity;
    edges_[id + 1].residual = 0.0;
  }
  double total = 0.0;
  while (build_levels(source, sink)) {
    iter_.assign(head_.size(), 0);
    while (true) {
      const double pushed =
          push(source, sink, std::numeric_limits<double>::infinity());
      if (pushed <= kEps) break;
      total += pushed;
    }
  }
  return total;
}

}  // namespace flowtime::lp
