#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <vector>

#include "lp/solve_profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace flowtime::lp {

namespace {

// Clock read for the profiled path only: the engine checks its cached
// thread-local profile pointer first, so the unprofiled hot loop never
// touches the clock.
inline std::uint64_t prof_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Nonbasic rest position of a variable.
enum class NonbasicState : std::uint8_t { kAtLower, kAtUpper, kFree };

// Internal working problem: min c.x  s.t.  A x = b,  lb <= x <= ub, where
// columns [0, n_struct) are structural, [n_struct, n_struct+m) slacks and
// [n_struct+m, n_struct+2m) artificials.
struct ColEntry {
  int row = 0;
  double coeff = 0.0;
};

struct Working {
  int m = 0;        // rows
  int n_total = 0;  // all columns including slacks and artificials
  int n_struct = 0;
  std::vector<std::vector<ColEntry>> cols;  // column-wise A
  std::vector<double> lb, ub;
  std::vector<double> cost;  // phase-2 objective
  std::vector<double> b;
};

class Engine {
 public:
  Engine(const LpProblem& problem, const SimplexOptions& options)
      : options_(options) {
    build(problem);
  }

  Solution run(const LpProblem& problem, const Basis* warm) {
    Solution result;
    const std::int64_t limit =
        options_.max_iterations > 0
            ? options_.max_iterations
            : 200LL * (w_.m + w_.n_total) + 2000;

    bool warmed = false;
    if (warm != nullptr && !warm->empty()) {
      warmed = warm_start(*warm, limit, &result);
      result.warm_start_used = warmed;
      result.warm_start_fallback = !warmed;
    }

    if (!warmed) {
      init_basis();

      // Phase 1: minimize the sum of artificials.
      std::vector<double> phase1_cost(static_cast<std::size_t>(w_.n_total),
                                      0.0);
      for (int j = artificial_begin(); j < w_.n_total; ++j) {
        phase1_cost[static_cast<std::size_t>(j)] = 1.0;
      }
      const SolveStatus phase1 =
          optimize(phase1_cost, limit, &result.iterations);
      result.phase1_iterations = result.iterations;
      if (phase1 != SolveStatus::kOptimal) {
        result.status = phase1 == SolveStatus::kUnbounded
                            ? SolveStatus::kNumericalFailure  // phase 1 bounded
                            : phase1;
        return result;
      }
      // The phase-1 optimum is a residual: it only proves infeasibility
      // when it is nonzero *relative to the problem's scale*. A hard-coded
      // absolute cutoff misclassifies large-RHS formulations (residual
      // roundoff grows with ‖b‖) as infeasible.
      if (objective(phase1_cost) > infeasibility_threshold()) {
        result.status = SolveStatus::kInfeasible;
        return result;
      }
      // Pin artificials at zero for phase 2.
      for (int j = artificial_begin(); j < w_.n_total; ++j) {
        w_.lb[static_cast<std::size_t>(j)] = 0.0;
        w_.ub[static_cast<std::size_t>(j)] = 0.0;
        if (!in_basis_[static_cast<std::size_t>(j)]) {
          state_[static_cast<std::size_t>(j)] = NonbasicState::kAtLower;
        }
      }
    }

    // Phase 2: the real objective. An iteration-limit or budget cutoff
    // still returns the current feasible point and basis — truncated, not
    // failed.
    const SolveStatus phase2 = optimize(w_.cost, limit, &result.iterations);
    result.status = phase2;
    if (phase2 != SolveStatus::kOptimal &&
        phase2 != SolveStatus::kIterationLimit &&
        phase2 != SolveStatus::kTimeout) {
      return result;
    }
    result.basis = capture_basis();

    // Extract primal values for structural columns.
    std::vector<double> full = current_point();
    result.x.assign(full.begin(), full.begin() + w_.n_struct);
    result.objective = 0.0;
    for (int j = 0; j < w_.n_struct; ++j) {
      result.objective += w_.cost[static_cast<std::size_t>(j)] *
                          full[static_cast<std::size_t>(j)];
    }
    result.row_activity.resize(static_cast<std::size_t>(w_.m));
    for (int i = 0; i < w_.m; ++i) {
      // Row activity of the original row = rhs - slack value.
      const int slack = slack_begin() + i;
      result.row_activity[static_cast<std::size_t>(i)] =
          w_.b[static_cast<std::size_t>(i)] -
          full[static_cast<std::size_t>(slack)];
    }
    result.duals = compute_duals(w_.cost);
    (void)problem;
    return result;
  }

 private:
  int slack_begin() const { return w_.n_struct; }
  int artificial_begin() const { return w_.n_struct + w_.m; }

  void build(const LpProblem& p) {
    w_.m = p.num_rows();
    w_.n_struct = p.num_columns();
    w_.n_total = w_.n_struct + 2 * w_.m;
    w_.cols.resize(static_cast<std::size_t>(w_.n_total));
    w_.lb.assign(static_cast<std::size_t>(w_.n_total), 0.0);
    w_.ub.assign(static_cast<std::size_t>(w_.n_total), kInfinity);
    w_.cost.assign(static_cast<std::size_t>(w_.n_total), 0.0);
    w_.b.resize(static_cast<std::size_t>(w_.m));

    for (int j = 0; j < w_.n_struct; ++j) {
      w_.lb[static_cast<std::size_t>(j)] = p.lower_bound(j);
      w_.ub[static_cast<std::size_t>(j)] = p.upper_bound(j);
      w_.cost[static_cast<std::size_t>(j)] = p.objective_coeff(j);
    }
    for (int i = 0; i < w_.m; ++i) {
      for (const RowEntry& e : p.row_entries(i)) {
        w_.cols[static_cast<std::size_t>(e.column)].push_back(
            ColEntry{i, e.coeff});
      }
      w_.b[static_cast<std::size_t>(i)] = p.row_rhs(i);
      const int slack = slack_begin() + i;
      w_.cols[static_cast<std::size_t>(slack)].push_back(ColEntry{i, 1.0});
      switch (p.row_sense(i)) {
        case RowSense::kLessEqual:
          w_.lb[static_cast<std::size_t>(slack)] = 0.0;
          w_.ub[static_cast<std::size_t>(slack)] = kInfinity;
          break;
        case RowSense::kEqual:
          w_.lb[static_cast<std::size_t>(slack)] = 0.0;
          w_.ub[static_cast<std::size_t>(slack)] = 0.0;
          break;
        case RowSense::kGreaterEqual:
          w_.lb[static_cast<std::size_t>(slack)] = -kInfinity;
          w_.ub[static_cast<std::size_t>(slack)] = 0.0;
          break;
      }
    }
  }

  // Rest value of a nonbasic variable.
  double nonbasic_value(int j) const {
    switch (state_[static_cast<std::size_t>(j)]) {
      case NonbasicState::kAtLower:
        return w_.lb[static_cast<std::size_t>(j)];
      case NonbasicState::kAtUpper:
        return w_.ub[static_cast<std::size_t>(j)];
      case NonbasicState::kFree:
        return 0.0;
    }
    return 0.0;
  }

  // Sets state_[j] to the natural rest position given its bounds.
  void rest_nonbasic(int j) {
    const double lo = w_.lb[static_cast<std::size_t>(j)];
    const double hi = w_.ub[static_cast<std::size_t>(j)];
    if (std::isfinite(lo)) {
      state_[static_cast<std::size_t>(j)] = NonbasicState::kAtLower;
    } else if (std::isfinite(hi)) {
      state_[static_cast<std::size_t>(j)] = NonbasicState::kAtUpper;
    } else {
      state_[static_cast<std::size_t>(j)] = NonbasicState::kFree;
    }
  }

  // Starts from the all-artificial basis: artificial i carries the residual
  // of row i with a +/-1 coefficient chosen so its value is nonnegative.
  void init_basis() {
    const auto n = static_cast<std::size_t>(w_.n_total);
    state_.assign(n, NonbasicState::kAtLower);
    in_basis_.assign(n, false);
    basis_.assign(static_cast<std::size_t>(w_.m), -1);

    for (int j = 0; j < artificial_begin(); ++j) rest_nonbasic(j);

    std::vector<double> residual = w_.b;
    for (int j = 0; j < artificial_begin(); ++j) {
      const double v = nonbasic_value(j);
      if (v == 0.0) continue;
      for (const ColEntry& e : w_.cols[static_cast<std::size_t>(j)]) {
        residual[static_cast<std::size_t>(e.row)] -= e.coeff * v;
      }
    }
    binv_.assign(static_cast<std::size_t>(w_.m) * w_.m, 0.0);
    xb_.resize(static_cast<std::size_t>(w_.m));
    for (int i = 0; i < w_.m; ++i) {
      const double r = residual[static_cast<std::size_t>(i)];
      const double sign = r < 0.0 ? -1.0 : 1.0;
      const int art = artificial_begin() + i;
      // A failed warm-start attempt leaves artificials pinned at zero;
      // phase 1 needs their full range back.
      w_.lb[static_cast<std::size_t>(art)] = 0.0;
      w_.ub[static_cast<std::size_t>(art)] = kInfinity;
      w_.cols[static_cast<std::size_t>(art)].clear();
      w_.cols[static_cast<std::size_t>(art)].push_back(ColEntry{i, sign});
      basis_[static_cast<std::size_t>(i)] = art;
      in_basis_[static_cast<std::size_t>(art)] = true;
      binv_at(i, i) = sign;  // B = diag(sign) => B^{-1} = diag(sign)
      xb_[static_cast<std::size_t>(i)] = std::abs(r);
    }
  }

  // Phase-1 residual above which the problem is declared infeasible,
  // scaled by the RHS magnitude so the test is invariant under row scaling.
  // The 10x headroom keeps the default (1e-6 for ‖b‖∞ <= 1) identical to
  // the solver's historical absolute cutoff.
  double infeasibility_threshold() const {
    double b_norm = 0.0;
    for (int i = 0; i < w_.m; ++i) {
      b_norm = std::max(b_norm, std::abs(w_.b[static_cast<std::size_t>(i)]));
    }
    return 10.0 * options_.feasibility_tol * std::max(1.0, b_norm);
  }

  Basis capture_basis() const {
    Basis basis;
    basis.num_rows = w_.m;
    basis.num_structural = w_.n_struct;
    basis.basic.assign(basis_.begin(), basis_.end());
    basis.nonbasic_state.resize(static_cast<std::size_t>(w_.n_total));
    for (int j = 0; j < w_.n_total; ++j) {
      basis.nonbasic_state[static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>(state_[static_cast<std::size_t>(j)]);
    }
    return basis;
  }

  // Installs a hinted basis: validates dimensions, refactorizes, and
  // repairs primal feasibility if the data changed under the basis.
  // Returns false (leaving the engine ready for init_basis) when the hint
  // is unusable; `result` accumulates the repair pivots either way.
  bool warm_start(const Basis& hint, std::int64_t limit, Solution* result) {
    if (hint.num_rows != w_.m || hint.num_structural != w_.n_struct ||
        static_cast<int>(hint.basic.size()) != w_.m ||
        static_cast<int>(hint.nonbasic_state.size()) != w_.n_total) {
      return false;
    }
    const auto n = static_cast<std::size_t>(w_.n_total);
    in_basis_.assign(n, false);
    basis_.assign(static_cast<std::size_t>(w_.m), -1);
    state_.assign(n, NonbasicState::kAtLower);
    // Artificials exist only to carry a cold phase 1; under a warm start
    // they are pinned at zero from the outset (a hinted basic artificial
    // keeps its fixed [0,0] range and the repair pass handles the rest).
    for (int i = 0; i < w_.m; ++i) {
      const int art = artificial_begin() + i;
      w_.cols[static_cast<std::size_t>(art)].clear();
      w_.cols[static_cast<std::size_t>(art)].push_back(ColEntry{i, 1.0});
      w_.lb[static_cast<std::size_t>(art)] = 0.0;
      w_.ub[static_cast<std::size_t>(art)] = 0.0;
    }
    for (int i = 0; i < w_.m; ++i) {
      const int j = hint.basic[static_cast<std::size_t>(i)];
      if (j < 0 || j >= w_.n_total || in_basis_[static_cast<std::size_t>(j)]) {
        return false;
      }
      basis_[static_cast<std::size_t>(i)] = j;
      in_basis_[static_cast<std::size_t>(j)] = true;
    }
    for (int j = 0; j < w_.n_total; ++j) {
      if (in_basis_[static_cast<std::size_t>(j)]) continue;
      const auto raw = hint.nonbasic_state[static_cast<std::size_t>(j)];
      NonbasicState s = raw <= 2 ? static_cast<NonbasicState>(raw)
                                 : NonbasicState::kAtLower;
      // Bounds may have changed since the snapshot; an infinite rest
      // position is meaningless, so re-derive it from the current bounds.
      if ((s == NonbasicState::kAtLower &&
           !std::isfinite(w_.lb[static_cast<std::size_t>(j)])) ||
          (s == NonbasicState::kAtUpper &&
           !std::isfinite(w_.ub[static_cast<std::size_t>(j)]))) {
        rest_nonbasic(j);
      } else {
        state_[static_cast<std::size_t>(j)] = s;
      }
    }
    binv_.assign(static_cast<std::size_t>(w_.m) * w_.m, 0.0);
    xb_.resize(static_cast<std::size_t>(w_.m));
    if (!refactorize()) {
      // A stale hint can be singular against the current matrix (e.g. a
      // coefficient edit emptied a basic column). Swap the dependent
      // columns for row artificials and retry — the repair pass below then
      // acts as a phase 1 restricted to the patched rows.
      patch_singular_basis();
      if (!refactorize()) return false;
    }
    return repair_primal_feasibility(limit, result);
  }

  // Finds the linearly dependent columns of the current basis and replaces
  // each with the artificial of a row no independent column pivots on, so
  // the basis becomes nonsingular by construction. Displaced columns rest
  // at a bound. Called only on the warm-start path, where the artificials
  // are pinned at [0, 0]: any value the patched artificial has to carry
  // shows up as a bound violation for repair_primal_feasibility to clear.
  void patch_singular_basis() {
    if (profile_ != nullptr) ++profile_->basis_patches;
    const int m = w_.m;
    std::vector<std::vector<double>> reduced;  // accepted columns, reduced
    std::vector<int> pivot_rows;
    std::vector<char> row_used(static_cast<std::size_t>(m), 0);
    std::vector<int> dependent;
    for (int p = 0; p < m; ++p) {
      std::vector<double> v(static_cast<std::size_t>(m), 0.0);
      const int j = basis_[static_cast<std::size_t>(p)];
      for (const ColEntry& e : w_.cols[static_cast<std::size_t>(j)]) {
        v[static_cast<std::size_t>(e.row)] = e.coeff;
      }
      for (std::size_t k = 0; k < reduced.size(); ++k) {
        const int r = pivot_rows[k];
        const double f = v[static_cast<std::size_t>(r)] /
                         reduced[k][static_cast<std::size_t>(r)];
        if (f == 0.0) continue;
        for (int i = 0; i < m; ++i) {
          v[static_cast<std::size_t>(i)] -=
              f * reduced[k][static_cast<std::size_t>(i)];
        }
      }
      int pivot = -1;
      double best = options_.pivot_tol;
      for (int i = 0; i < m; ++i) {
        if (row_used[static_cast<std::size_t>(i)]) continue;
        if (std::abs(v[static_cast<std::size_t>(i)]) > best) {
          best = std::abs(v[static_cast<std::size_t>(i)]);
          pivot = i;
        }
      }
      if (pivot < 0) {
        dependent.push_back(p);
        continue;
      }
      row_used[static_cast<std::size_t>(pivot)] = 1;
      reduced.push_back(std::move(v));
      pivot_rows.push_back(pivot);
    }
    int next_free_row = 0;
    for (const int p : dependent) {
      while (row_used[static_cast<std::size_t>(next_free_row)]) {
        ++next_free_row;
      }
      const int old = basis_[static_cast<std::size_t>(p)];
      in_basis_[static_cast<std::size_t>(old)] = false;
      rest_nonbasic(old);
      // The uncovered row's artificial cannot already be basic: it would
      // have pivoted on that row.
      const int art = artificial_begin() + next_free_row;
      row_used[static_cast<std::size_t>(next_free_row)] = 1;
      basis_[static_cast<std::size_t>(p)] = art;
      in_basis_[static_cast<std::size_t>(art)] = true;
    }
  }

  // The hinted basis solves B x_B = b - N x_N exactly, but data changes
  // (rhs, bounds, coefficients) may have pushed basic values outside their
  // bounds. Relax only the violated variables' offending bound and minimize
  // a cost that pushes each one back toward its range — phase 1 restricted
  // to the actual violations. Returns false when the violation cannot be
  // driven out (caller falls back to a cold solve, which settles
  // feasibility authoritatively).
  bool repair_primal_feasibility(std::int64_t limit, Solution* result) {
    const double tol = options_.feasibility_tol;
    struct Relaxed {
      int column;
      double lb, ub;    // true bounds, restored after the pass
      double direction; // +1: came down toward ub, -1: came up toward lb
    };
    // The linear repair objective can trade one variable's violation
    // against another's depth inside its range, so a single pass is not
    // always enough; refreshed violation sets settle the common cases and
    // anything deeper falls back to a cold solve.
    for (int pass = 0; pass < 3; ++pass) {
      std::vector<Relaxed> relaxed;
      std::vector<double> repair_cost;
      for (int i = 0; i < w_.m; ++i) {
        const int j = basis_[static_cast<std::size_t>(i)];
        const double v = xb_[static_cast<std::size_t>(i)];
        const double lo = w_.lb[static_cast<std::size_t>(j)];
        const double hi = w_.ub[static_cast<std::size_t>(j)];
        const double scale = 1.0 + std::abs(v);
        double direction = 0.0;
        if (v > hi + tol * scale) {
          direction = +1.0;  // too high: minimize it back down
        } else if (v < lo - tol * scale) {
          direction = -1.0;  // too low: maximize it back up
        } else {
          continue;
        }
        if (repair_cost.empty()) {
          repair_cost.assign(static_cast<std::size_t>(w_.n_total), 0.0);
        }
        relaxed.push_back(Relaxed{j, lo, hi, direction});
        repair_cost[static_cast<std::size_t>(j)] = direction;
        // Swap in a temporary box whose finite end is the violated bound:
        // the cost drives the variable exactly back to it and no further,
        // which also keeps the repair objective bounded (relaxing to an
        // open ray can make the repair LP unbounded through compensating
        // variables).
        if (direction > 0.0) {
          w_.lb[static_cast<std::size_t>(j)] = hi;  // box [ub, inf)
          w_.ub[static_cast<std::size_t>(j)] = kInfinity;
        } else {
          w_.lb[static_cast<std::size_t>(j)] = -kInfinity;  // box (-inf, lb]
          w_.ub[static_cast<std::size_t>(j)] = lo;
        }
      }
      if (relaxed.empty()) return true;  // primal feasible

      std::int64_t repair_iterations = 0;
      const SolveStatus status =
          optimize(repair_cost, limit, &repair_iterations);
      result->iterations += repair_iterations;
      result->phase1_iterations += repair_iterations;
      for (const Relaxed& r : relaxed) {
        const auto j = static_cast<std::size_t>(r.column);
        if (!in_basis_[j]) {
          // Parked on the finite end of the temporary box — numerically the
          // *opposite* true bound. Rename the rest state so restoring the
          // box keeps the variable's value unchanged.
          if (r.direction > 0.0 && state_[j] == NonbasicState::kAtLower) {
            state_[j] = NonbasicState::kAtUpper;  // value ub, was temp lb
          } else if (r.direction < 0.0 &&
                     state_[j] == NonbasicState::kAtUpper) {
            state_[j] = NonbasicState::kAtLower;  // value lb, was temp ub
          }
        }
        w_.lb[j] = r.lb;
        w_.ub[j] = r.ub;
      }
      if (status != SolveStatus::kOptimal) return false;
      // Nonbasic variables are back on true bounds after the renaming
      // above; only basic values can still violate, which the next pass
      // re-collects.
    }
    for (int i = 0; i < w_.m; ++i) {
      const int j = basis_[static_cast<std::size_t>(i)];
      const double v = xb_[static_cast<std::size_t>(i)];
      const double scale = 1.0 + std::abs(v);
      if (v > w_.ub[static_cast<std::size_t>(j)] + tol * scale ||
          v < w_.lb[static_cast<std::size_t>(j)] - tol * scale) {
        return false;
      }
    }
    return true;
  }

  double& binv_at(int i, int k) {
    return binv_[static_cast<std::size_t>(i) * w_.m + k];
  }
  double binv_at(int i, int k) const {
    return binv_[static_cast<std::size_t>(i) * w_.m + k];
  }

  // w = B^{-1} a_j using the sparse column.
  void ftran(int j, std::vector<double>& out) const {
    out.assign(static_cast<std::size_t>(w_.m), 0.0);
    for (const ColEntry& e : w_.cols[static_cast<std::size_t>(j)]) {
      const double a = e.coeff;
      const int k = e.row;
      for (int i = 0; i < w_.m; ++i) {
        out[static_cast<std::size_t>(i)] += binv_at(i, k) * a;
      }
    }
  }

  // y = c_B^T B^{-1}.
  std::vector<double> compute_duals(const std::vector<double>& cost) const {
    std::vector<double> y(static_cast<std::size_t>(w_.m), 0.0);
    for (int i = 0; i < w_.m; ++i) {
      const double cb = cost[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(i)])];
      if (cb == 0.0) continue;
      for (int k = 0; k < w_.m; ++k) {
        y[static_cast<std::size_t>(k)] += cb * binv_at(i, k);
      }
    }
    return y;
  }

  double reduced_cost(int j, const std::vector<double>& cost,
                      const std::vector<double>& y) const {
    double d = cost[static_cast<std::size_t>(j)];
    for (const ColEntry& e : w_.cols[static_cast<std::size_t>(j)]) {
      d -= y[static_cast<std::size_t>(e.row)] * e.coeff;
    }
    return d;
  }

  double objective(const std::vector<double>& cost) const {
    double value = 0.0;
    const std::vector<double> point = current_point();
    for (int j = 0; j < w_.n_total; ++j) {
      value += cost[static_cast<std::size_t>(j)] *
               point[static_cast<std::size_t>(j)];
    }
    return value;
  }

  std::vector<double> current_point() const {
    std::vector<double> x(static_cast<std::size_t>(w_.n_total), 0.0);
    for (int j = 0; j < w_.n_total; ++j) {
      if (!in_basis_[static_cast<std::size_t>(j)]) x[static_cast<std::size_t>(j)] = nonbasic_value(j);
    }
    for (int i = 0; i < w_.m; ++i) {
      x[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
          xb_[static_cast<std::size_t>(i)];
    }
    return x;
  }

  // Rebuilds binv_ and xb_ from the basis by Gauss-Jordan; returns false on a
  // singular basis (numerical failure). Timed as its own profile phase — it
  // is the O(m^3) step the refactor_interval knob trades against update
  // drift, and the number ROADMAP item 1 wants pinned.
  bool refactorize() {
    if (profile_ == nullptr) return refactorize_impl();
    const std::uint64_t t0 = prof_now_ns();
    const bool ok = refactorize_impl();
    ++profile_->refactorizations;
    profile_->refactor_s += static_cast<double>(prof_now_ns() - t0) * 1e-9;
    return ok;
  }

  bool refactorize_impl() {
    const int m = w_.m;
    // Dense B and identity side by side.
    std::vector<double> mat(static_cast<std::size_t>(m) * 2 * m, 0.0);
    auto at = [&](int i, int k) -> double& {
      return mat[static_cast<std::size_t>(i) * 2 * m + k];
    };
    for (int i = 0; i < m; ++i) {
      const int j = basis_[static_cast<std::size_t>(i)];
      for (const ColEntry& e : w_.cols[static_cast<std::size_t>(j)]) {
        at(e.row, i) = e.coeff;
      }
      at(i, m + i) = 1.0;
    }
    for (int col = 0; col < m; ++col) {
      int pivot = -1;
      double best = options_.pivot_tol;
      for (int i = col; i < m; ++i) {
        if (std::abs(at(i, col)) > best) {
          best = std::abs(at(i, col));
          pivot = i;
        }
      }
      if (pivot < 0) return false;
      if (pivot != col) {
        // Row swaps are internal to the elimination (they left-multiply by a
        // permutation, which the resulting inverse absorbs); the basis
        // bookkeeping must not be permuted.
        for (int k = 0; k < 2 * m; ++k) std::swap(at(pivot, k), at(col, k));
      }
      const double inv = 1.0 / at(col, col);
      for (int k = 0; k < 2 * m; ++k) at(col, k) *= inv;
      for (int i = 0; i < m; ++i) {
        if (i == col) continue;
        const double f = at(i, col);
        if (f == 0.0) continue;
        for (int k = 0; k < 2 * m; ++k) at(i, k) -= f * at(col, k);
      }
    }
    for (int i = 0; i < m; ++i) {
      for (int k = 0; k < m; ++k) binv_at(i, k) = at(i, m + k);
    }
    recompute_basic_values();
    return true;
  }

  void recompute_basic_values() {
    std::vector<double> residual = w_.b;
    for (int j = 0; j < w_.n_total; ++j) {
      if (in_basis_[static_cast<std::size_t>(j)]) continue;
      const double v = nonbasic_value(j);
      if (v == 0.0) continue;
      for (const ColEntry& e : w_.cols[static_cast<std::size_t>(j)]) {
        residual[static_cast<std::size_t>(e.row)] -= e.coeff * v;
      }
    }
    for (int i = 0; i < w_.m; ++i) {
      double v = 0.0;
      for (int k = 0; k < w_.m; ++k) {
        v += binv_at(i, k) * residual[static_cast<std::size_t>(k)];
      }
      xb_[static_cast<std::size_t>(i)] = v;
    }
  }

  // Core primal iteration loop for a given cost vector; assumes the current
  // basis is primal feasible.
  SolveStatus optimize(const std::vector<double>& cost, std::int64_t limit,
                       std::int64_t* iteration_counter) {
    int degenerate_run = 0;
    int since_refactor = 0;
    std::vector<double> w(static_cast<std::size_t>(w_.m));

    while (true) {
      if (*iteration_counter >= limit) return SolveStatus::kIterationLimit;
      // Watchdog: the shared budget is polled at pivot granularity, so a
      // pathological basis can never stall past the caller's deadline by
      // more than one pivot's work.
      if (options_.budget != nullptr && options_.budget->exhausted()) {
        return options_.budget->exhausted_status();
      }

      // Phase attribution (profiled solves only): prof_t0 rolls forward at
      // each phase boundary so the three windows tile the iteration.
      std::uint64_t prof_t0 = profile_ != nullptr ? prof_now_ns() : 0;

      const std::vector<double> y = compute_duals(cost);
      const bool bland = degenerate_run > options_.degenerate_before_bland;

      // Pricing. Reduced costs are evaluated lazily: columns are scanned in
      // rotating sections of `section` and the best violated candidate of
      // the first section containing one enters. Optimality is declared
      // only after a whole wrap finds no candidate, so partial pricing
      // changes the pivot sequence, never the answer. Bland's rule needs
      // the lowest eligible index for its termination guarantee and scans
      // from zero.
      const int section =
          options_.pricing_section > 0
              ? options_.pricing_section
              : std::max(64, w_.n_total / 8);
      int entering = -1;
      double best_violation = options_.optimality_tol;
      int direction = +1;
      int scanned = 0;
      int j = bland ? 0 : pricing_cursor_;
      if (j >= w_.n_total) j = 0;
      for (; scanned < w_.n_total; ++scanned) {
        const int col = j;
        ++j;
        if (j == w_.n_total) j = 0;
        if (!bland && entering >= 0 && scanned % section == 0 &&
            scanned > 0) {
          break;  // section boundary with a candidate in hand
        }
        if (in_basis_[static_cast<std::size_t>(col)]) continue;
        const double lo = w_.lb[static_cast<std::size_t>(col)];
        const double hi = w_.ub[static_cast<std::size_t>(col)];
        if (lo == hi) continue;  // fixed variable never enters
        const double d = reduced_cost(col, cost, y);
        int dir = 0;
        double violation = 0.0;
        switch (state_[static_cast<std::size_t>(col)]) {
          case NonbasicState::kAtLower:
            if (d < -options_.optimality_tol) {
              dir = +1;
              violation = -d;
            }
            break;
          case NonbasicState::kAtUpper:
            if (d > options_.optimality_tol) {
              dir = -1;
              violation = d;
            }
            break;
          case NonbasicState::kFree:
            if (std::abs(d) > options_.optimality_tol) {
              dir = d < 0.0 ? +1 : -1;
              violation = std::abs(d);
            }
            break;
        }
        if (dir == 0) continue;
        if (bland) {  // first eligible index
          entering = col;
          direction = dir;
          break;
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = col;
          direction = dir;
        }
      }
      if (!bland) pricing_cursor_ = j;
      if (profile_ != nullptr) {
        const std::uint64_t t1 = prof_now_ns();
        profile_->pricing_s += static_cast<double>(t1 - prof_t0) * 1e-9;
        prof_t0 = t1;
      }
      if (entering < 0) return SolveStatus::kOptimal;

      ftran(entering, w);

      // Ratio test. The entering variable moves by t >= 0 in `direction`;
      // basic variable i moves at rate -direction * w_i.
      const double own_gap =
          w_.ub[static_cast<std::size_t>(entering)] -
          w_.lb[static_cast<std::size_t>(entering)];
      double t_best = std::isfinite(own_gap) ? own_gap : kInfinity;
      int leaving_row = -1;       // -1 => bound flip
      bool leaving_at_upper = false;
      double best_pivot_mag = 0.0;  // |w_i| of the current leaving row
      for (int i = 0; i < w_.m; ++i) {
        const double rate = -direction * w[static_cast<std::size_t>(i)];
        if (std::abs(rate) <= options_.pivot_tol) continue;
        const int bj = basis_[static_cast<std::size_t>(i)];
        const double xi = xb_[static_cast<std::size_t>(i)];
        double t_i = kInfinity;
        bool hits_upper = false;
        if (rate > 0.0) {
          const double hi = w_.ub[static_cast<std::size_t>(bj)];
          if (std::isfinite(hi)) {
            t_i = (hi - xi) / rate;
            hits_upper = true;
          }
        } else {
          const double lo = w_.lb[static_cast<std::size_t>(bj)];
          if (std::isfinite(lo)) {
            t_i = (lo - xi) / rate;
            hits_upper = false;
          }
        }
        if (t_i < -options_.feasibility_tol) t_i = 0.0;  // clamp tiny drift
        t_i = std::max(t_i, 0.0);
        if (!std::isfinite(t_i)) continue;
        // Among (near-)equal ratios — the norm in degenerate scheduling
        // LPs — prefer the largest |pivot|: near-singular pivots poison
        // the updated inverse and force refactorize churn. Under Bland's
        // rule the lowest basic index wins instead (termination proof).
        bool take = false;
        if (t_i < t_best - 1e-12) {
          take = true;
        } else if (t_i <= t_best + 1e-12 && leaving_row >= 0) {
          take = bland ? bj < basis_[static_cast<std::size_t>(leaving_row)]
                       : std::abs(rate) > best_pivot_mag;
        }
        if (take) {
          t_best = std::min(t_best, t_i);
          leaving_row = i;
          leaving_at_upper = hits_upper;
          best_pivot_mag = std::abs(rate);
        }
      }

      if (profile_ != nullptr) {
        const std::uint64_t t1 = prof_now_ns();
        profile_->ratio_test_s += static_cast<double>(t1 - prof_t0) * 1e-9;
        prof_t0 = t1;
        if (std::isfinite(t_best) && t_best <= options_.feasibility_tol) {
          ++profile_->degenerate_pivots;
        }
      }
      if (!std::isfinite(t_best)) return SolveStatus::kUnbounded;

      degenerate_run = t_best <= options_.feasibility_tol
                           ? degenerate_run + 1
                           : 0;
      ++*iteration_counter;
      if (options_.budget != nullptr) options_.budget->charge_pivot();

      if (leaving_row < 0) {
        // Bound flip: entering travels its whole gap, basis unchanged.
        for (int i = 0; i < w_.m; ++i) {
          xb_[static_cast<std::size_t>(i)] +=
              -direction * w[static_cast<std::size_t>(i)] * t_best;
        }
        state_[static_cast<std::size_t>(entering)] =
            state_[static_cast<std::size_t>(entering)] ==
                    NonbasicState::kAtLower
                ? NonbasicState::kAtUpper
                : NonbasicState::kAtLower;
        if (profile_ != nullptr) {
          ++profile_->bound_flips;
          profile_->basis_update_s +=
              static_cast<double>(prof_now_ns() - prof_t0) * 1e-9;
        }
        continue;
      }

      // Pivot: update values, basis bookkeeping and the inverse.
      const double entering_value = nonbasic_value(entering) +
                                    direction * t_best;
      for (int i = 0; i < w_.m; ++i) {
        if (i == leaving_row) continue;
        xb_[static_cast<std::size_t>(i)] +=
            -direction * w[static_cast<std::size_t>(i)] * t_best;
      }
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      in_basis_[static_cast<std::size_t>(leaving)] = false;
      state_[static_cast<std::size_t>(leaving)] =
          leaving_at_upper ? NonbasicState::kAtUpper : NonbasicState::kAtLower;
      basis_[static_cast<std::size_t>(leaving_row)] = entering;
      in_basis_[static_cast<std::size_t>(entering)] = true;
      xb_[static_cast<std::size_t>(leaving_row)] = entering_value;

      const double pivot = w[static_cast<std::size_t>(leaving_row)];
      if (std::abs(pivot) <= options_.pivot_tol) {
        if (profile_ != nullptr) {
          profile_->basis_update_s +=
              static_cast<double>(prof_now_ns() - prof_t0) * 1e-9;
        }
        if (!refactorize()) return SolveStatus::kNumericalFailure;
        continue;
      }
      const double inv_pivot = 1.0 / pivot;
      for (int k = 0; k < w_.m; ++k) binv_at(leaving_row, k) *= inv_pivot;
      for (int i = 0; i < w_.m; ++i) {
        if (i == leaving_row) continue;
        const double f = w[static_cast<std::size_t>(i)];
        if (f == 0.0) continue;
        for (int k = 0; k < w_.m; ++k) {
          binv_at(i, k) -= f * binv_at(leaving_row, k);
        }
      }
      if (profile_ != nullptr) {
        profile_->basis_update_s +=
            static_cast<double>(prof_now_ns() - prof_t0) * 1e-9;
      }

      if (++since_refactor >= options_.refactor_interval) {
        since_refactor = 0;
        if (!refactorize()) return SolveStatus::kNumericalFailure;
      }
    }
  }

  SimplexOptions options_;
  Working w_;
  /// The thread's active profiling scope, cached once per engine so the
  /// pivot loop pays a plain pointer test, not a thread_local lookup.
  SolveProfile* profile_ = current_profile();
  int pricing_cursor_ = 0;             // partial-pricing scan position
  std::vector<int> basis_;             // column basic in each row
  std::vector<bool> in_basis_;         // per column
  std::vector<NonbasicState> state_;   // per column, meaningful if nonbasic
  std::vector<double> binv_;           // dense m x m basis inverse
  std::vector<double> xb_;             // values of basic variables
};

}  // namespace

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

Solution SimplexSolver::solve(const LpProblem& problem,
                              const Basis* warm) const {
  if (!obs::enabled()) {
    Solution result = solve_impl(problem, warm);
    if (SolveProfile* profile = current_profile()) {
      ++profile->solves;
      profile->pivots += result.iterations;
    }
    return result;
  }

  Solution result;
  {
    // The timer's destructor stamps result.solve_seconds when this scope
    // closes, i.e. after the assignment below.
    obs::ScopedTimer timer(
        &result.solve_seconds,
        &obs::registry().histogram("lp.simplex.solve_seconds"));
    result = solve_impl(problem, warm);
  }
  if (SolveProfile* profile = current_profile()) {
    ++profile->solves;
    profile->pivots += result.iterations;
  }
  obs::Registry& reg = obs::registry();
  reg.counter("lp.simplex.solves").add();
  reg.counter("lp.simplex.pivots").add(result.iterations);
  if (result.status == SolveStatus::kInfeasible) {
    reg.counter("lp.simplex.infeasible").add();
  }
  if (result.warm_start_used) reg.counter("lp.simplex.warm_starts").add();
  if (result.warm_start_fallback) {
    reg.counter("lp.simplex.warm_start_fallbacks").add();
  }
  if (options_.budget != nullptr && options_.budget->exhausted() &&
      (result.status == SolveStatus::kTimeout ||
       result.status == SolveStatus::kIterationLimit)) {
    reg.counter("lp.budget_exhausted").add();
  }
  obs::emit(obs::TraceEvent("simplex_solve")
                .field("rows", problem.num_rows())
                .field("cols", problem.num_columns())
                .field("status", to_string(result.status))
                .field("pivots", result.iterations)
                .field("phase1_iters", result.phase1_iterations)
                .field("phase2_iters",
                       result.iterations - result.phase1_iterations)
                .field("objective", result.objective)
                .field("warm_start", result.warm_start_used)
                .field("warm_start_fallback", result.warm_start_fallback)
                .field("wall_s", result.solve_seconds));
  return result;
}

Solution SimplexSolver::solve_impl(const LpProblem& problem,
                                   const Basis* warm) const {
  if (problem.num_rows() == 0) {
    // Pure bound problem: each variable rests at whichever bound minimizes.
    Solution result;
    result.status = SolveStatus::kOptimal;
    result.x.resize(static_cast<std::size_t>(problem.num_columns()));
    for (int j = 0; j < problem.num_columns(); ++j) {
      const double c = problem.objective_coeff(j);
      const double lo = problem.lower_bound(j);
      const double hi = problem.upper_bound(j);
      double v;
      if (c > 0.0) {
        v = lo;
      } else if (c < 0.0) {
        v = hi;
      } else {
        v = std::isfinite(lo) ? lo : (std::isfinite(hi) ? hi : 0.0);
      }
      if (!std::isfinite(v)) {
        result.status = SolveStatus::kUnbounded;
        return result;
      }
      result.x[static_cast<std::size_t>(j)] = v;
      result.objective += c * v;
    }
    return result;
  }
  Engine engine(problem, options_);
  return engine.run(problem, warm);
}

}  // namespace flowtime::lp
