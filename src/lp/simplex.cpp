#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "lp/solve_profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace flowtime::lp {

namespace {

// Clock read for the profiled path only: the engine checks its cached
// thread-local profile pointer first, so the unprofiled hot loop never
// touches the clock.
inline std::uint64_t prof_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Nonbasic rest position of a variable.
enum class NonbasicState : std::uint8_t { kAtLower, kAtUpper, kFree };

// Borrowed view of one sparse column (entries sorted by row).
struct ColSpan {
  const ColEntry* data = nullptr;
  std::size_t size = 0;
  const ColEntry* begin() const { return data; }
  const ColEntry* end() const { return data + size; }
};

// Column provider for refactorization: the engine hands the basis
// representation its columns without exposing the rest of the working state.
class ColumnSource {
 public:
  virtual ColSpan col(int j) const = 0;

 protected:
  ~ColumnSource() = default;
};

// Basis representation behind the revised simplex. Index conventions:
// "row" means constraint row, "position" means basis slot (both range over
// [0, m) and coincide in the pivot loop — basic variable of slot i leaves on
// constraint row i). ftran/solve_dense map row-indexed inputs to
// position-indexed outputs; btran maps position-indexed costs to row-indexed
// duals. `update` is called only with |w[leaving_row]| > pivot_tol.
class BasisRep {
 public:
  virtual ~BasisRep() = default;

  /// Installs B = diag(signs) (the all-artificial start basis) and clears
  /// any update history.
  virtual void install_diagonal(const std::vector<double>& signs) = 0;

  /// Rebuilds the representation from the current basis columns.
  /// Returns false when the basis is (numerically) singular.
  virtual bool refactorize(const ColumnSource& cols,
                           const std::vector<int>& basis) = 0;

  /// out = B^{-1} a for a sparse column a.
  virtual void ftran(ColSpan a, std::vector<double>& out) const = 0;

  /// out = B^{-1} rhs for a dense row-indexed rhs (basic-value recompute).
  virtual void solve_dense(const std::vector<double>& rhs,
                           std::vector<double>& out) const = 0;

  /// y^T = cb^T B^{-1} for the dense basic-cost vector cb (one per slot).
  virtual void btran(const std::vector<double>& cb,
                     std::vector<double>& y) const = 0;

  /// Absorbs a pivot: the column in slot `leaving_row` was replaced by the
  /// entering column whose ftran image is `w`.
  virtual void update(int leaving_row, const std::vector<double>& w) = 0;
};

// Reference engine: explicitly maintained dense m x m inverse, dense
// Gauss-Jordan refactorization. Kept operation-for-operation identical to
// the solver's historical dense path so differential tests pin the sparse
// engine against it.
class DenseBasis final : public BasisRep {
 public:
  DenseBasis(int m, double pivot_tol) : m_(m), pivot_tol_(pivot_tol) {}

  void install_diagonal(const std::vector<double>& signs) override {
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) at(i, i) = signs[static_cast<std::size_t>(i)];
  }

  bool refactorize(const ColumnSource& cols,
                   const std::vector<int>& basis) override {
    const int m = m_;
    // Dense B and identity side by side.
    std::vector<double> mat(static_cast<std::size_t>(m) * 2 * m, 0.0);
    auto aug = [&](int i, int k) -> double& {
      return mat[static_cast<std::size_t>(i) * 2 * m + k];
    };
    for (int i = 0; i < m; ++i) {
      for (const ColEntry& e : cols.col(basis[static_cast<std::size_t>(i)])) {
        aug(e.row, i) = e.coeff;
      }
      aug(i, m + i) = 1.0;
    }
    for (int col = 0; col < m; ++col) {
      int pivot = -1;
      double best = pivot_tol_;
      for (int i = col; i < m; ++i) {
        if (std::abs(aug(i, col)) > best) {
          best = std::abs(aug(i, col));
          pivot = i;
        }
      }
      if (pivot < 0) return false;
      if (pivot != col) {
        // Row swaps are internal to the elimination (they left-multiply by a
        // permutation, which the resulting inverse absorbs); the basis
        // bookkeeping must not be permuted.
        for (int k = 0; k < 2 * m; ++k) std::swap(aug(pivot, k), aug(col, k));
      }
      const double inv = 1.0 / aug(col, col);
      for (int k = 0; k < 2 * m; ++k) aug(col, k) *= inv;
      for (int i = 0; i < m; ++i) {
        if (i == col) continue;
        const double f = aug(i, col);
        if (f == 0.0) continue;
        for (int k = 0; k < 2 * m; ++k) aug(i, k) -= f * aug(col, k);
      }
    }
    if (binv_.size() != static_cast<std::size_t>(m) * m) {
      binv_.resize(static_cast<std::size_t>(m) * m);
    }
    for (int i = 0; i < m; ++i) {
      for (int k = 0; k < m; ++k) at(i, k) = aug(i, m + k);
    }
    return true;
  }

  void ftran(ColSpan a, std::vector<double>& out) const override {
    out.assign(static_cast<std::size_t>(m_), 0.0);
    for (const ColEntry& e : a) {
      const double v = e.coeff;
      const int k = e.row;
      for (int i = 0; i < m_; ++i) {
        out[static_cast<std::size_t>(i)] += at(i, k) * v;
      }
    }
  }

  void solve_dense(const std::vector<double>& rhs,
                   std::vector<double>& out) const override {
    out.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      for (int k = 0; k < m_; ++k) {
        v += at(i, k) * rhs[static_cast<std::size_t>(k)];
      }
      out[static_cast<std::size_t>(i)] = v;
    }
  }

  void btran(const std::vector<double>& cb,
             std::vector<double>& y) const override {
    y.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const double c = cb[static_cast<std::size_t>(i)];
      if (c == 0.0) continue;
      for (int k = 0; k < m_; ++k) {
        y[static_cast<std::size_t>(k)] += c * at(i, k);
      }
    }
  }

  void update(int leaving_row, const std::vector<double>& w) override {
    const double inv_pivot = 1.0 / w[static_cast<std::size_t>(leaving_row)];
    for (int k = 0; k < m_; ++k) at(leaving_row, k) *= inv_pivot;
    for (int i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      const double f = w[static_cast<std::size_t>(i)];
      if (f == 0.0) continue;
      for (int k = 0; k < m_; ++k) {
        at(i, k) -= f * at(leaving_row, k);
      }
    }
  }

 private:
  double& at(int i, int k) { return binv_[static_cast<std::size_t>(i) * m_ + k]; }
  double at(int i, int k) const {
    return binv_[static_cast<std::size_t>(i) * m_ + k];
  }

  int m_ = 0;
  double pivot_tol_ = 0.0;
  std::vector<double> binv_;
};

// Sparse engine: left-looking LU factorization of the basis (threshold-free
// partial pivoting — on the scheduler's totally unimodular bases every pivot
// is ±1, so magnitude-greedy selection is already exact) plus a product-form
// eta file absorbing pivots between refactorizations. The eta file is
// bounded by SimplexOptions::refactor_interval, after which the engine
// refactorizes and the file resets.
//
// Factoring B with columns taken in a fill-reducing order cperm (ascending
// column nonzero count) and pivot rows rperm gives, with C[:,k] =
// B[:, cperm[k]]:   (P_r C) = L U,  L unit lower triangular, both in step
// space. ftran solves L, then U, then scatters v into position space via
// cperm and replays etas oldest-to-newest; btran applies eta transposes
// newest-to-oldest, gathers through cperm, solves U^T then L^T, and scatters
// through rperm back to constraint-row space.
class SparseLuBasis final : public BasisRep {
 public:
  SparseLuBasis(int m, double pivot_tol) : m_(m), pivot_tol_(pivot_tol) {}

  void install_diagonal(const std::vector<double>& signs) override {
    lcols_.assign(static_cast<std::size_t>(m_), {});
    ucols_.assign(static_cast<std::size_t>(m_), {});
    udiag_ = signs;
    rperm_.resize(static_cast<std::size_t>(m_));
    cperm_.resize(static_cast<std::size_t>(m_));
    rowstep_.resize(static_cast<std::size_t>(m_));
    std::iota(rperm_.begin(), rperm_.end(), 0);
    std::iota(cperm_.begin(), cperm_.end(), 0);
    std::iota(rowstep_.begin(), rowstep_.end(), 0);
    etas_.clear();
  }

  bool refactorize(const ColumnSource& cols,
                   const std::vector<int>& basis) override {
    const int m = m_;
    // Ascending-nonzero column order: singleton columns (slacks, pinned
    // artificials) pivot first and generate no fill.
    cperm_.resize(static_cast<std::size_t>(m));
    std::iota(cperm_.begin(), cperm_.end(), 0);
    std::stable_sort(cperm_.begin(), cperm_.end(), [&](int a, int b) {
      return cols.col(basis[static_cast<std::size_t>(a)]).size <
             cols.col(basis[static_cast<std::size_t>(b)]).size;
    });
    lcols_.assign(static_cast<std::size_t>(m), {});
    ucols_.assign(static_cast<std::size_t>(m), {});
    udiag_.assign(static_cast<std::size_t>(m), 0.0);
    rperm_.assign(static_cast<std::size_t>(m), -1);
    rowstep_.assign(static_cast<std::size_t>(m), -1);
    etas_.clear();
    work_.assign(static_cast<std::size_t>(m), 0.0);

    for (int k = 0; k < m; ++k) {
      std::fill(work_.begin(), work_.end(), 0.0);
      const int j = basis[static_cast<std::size_t>(cperm_[static_cast<std::size_t>(k)])];
      for (const ColEntry& e : cols.col(j)) {
        work_[static_cast<std::size_t>(e.row)] = e.coeff;
      }
      // Left-looking elimination: apply every earlier L column; the value
      // sitting on an earlier pivot row at its turn is U(s, k).
      for (int s = 0; s < k; ++s) {
        const double u = work_[static_cast<std::size_t>(
            rperm_[static_cast<std::size_t>(s)])];
        if (u == 0.0) continue;
        ucols_[static_cast<std::size_t>(k)].push_back(Entry{s, u});
        for (const Entry& e : lcols_[static_cast<std::size_t>(s)]) {
          work_[static_cast<std::size_t>(e.index)] -= e.value * u;
        }
      }
      int prow = -1;
      double best = pivot_tol_;
      for (int row = 0; row < m; ++row) {
        if (rowstep_[static_cast<std::size_t>(row)] >= 0) continue;
        const double mag = std::abs(work_[static_cast<std::size_t>(row)]);
        if (mag > best) {
          best = mag;
          prow = row;
        }
      }
      if (prow < 0) return false;  // structurally or numerically singular
      rperm_[static_cast<std::size_t>(k)] = prow;
      rowstep_[static_cast<std::size_t>(prow)] = k;
      const double diag = work_[static_cast<std::size_t>(prow)];
      udiag_[static_cast<std::size_t>(k)] = diag;
      for (int row = 0; row < m; ++row) {
        if (rowstep_[static_cast<std::size_t>(row)] >= 0) continue;
        const double v = work_[static_cast<std::size_t>(row)];
        if (v != 0.0) {
          lcols_[static_cast<std::size_t>(k)].push_back(Entry{row, v / diag});
        }
      }
    }
    return true;
  }

  void ftran(ColSpan a, std::vector<double>& out) const override {
    work_.assign(static_cast<std::size_t>(m_), 0.0);
    for (const ColEntry& e : a) {
      work_[static_cast<std::size_t>(e.row)] = e.coeff;
    }
    factor_solve(out);
    apply_etas_forward(out);
  }

  void solve_dense(const std::vector<double>& rhs,
                   std::vector<double>& out) const override {
    work_ = rhs;
    factor_solve(out);
    apply_etas_forward(out);
  }

  void btran(const std::vector<double>& cb,
             std::vector<double>& y) const override {
    // g = (E_1^T ... E_k^T applied newest-to-oldest) cb, in position space.
    g_ = cb;
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double acc = g_[static_cast<std::size_t>(it->pos)];
      for (const Entry& e : it->w) {
        acc -= e.value * g_[static_cast<std::size_t>(e.index)];
      }
      g_[static_cast<std::size_t>(it->pos)] = acc / it->wp;
    }
    // Solve U^T t = P^T g (forward, using U's columns), then L^T s = t
    // (backward), and scatter through the row permutation.
    z_.resize(static_cast<std::size_t>(m_));
    for (int k = 0; k < m_; ++k) {
      double acc = g_[static_cast<std::size_t>(cperm_[static_cast<std::size_t>(k)])];
      for (const Entry& e : ucols_[static_cast<std::size_t>(k)]) {
        acc -= e.value * z_[static_cast<std::size_t>(e.index)];
      }
      z_[static_cast<std::size_t>(k)] = acc / udiag_[static_cast<std::size_t>(k)];
    }
    y.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = m_ - 1; k >= 0; --k) {
      double acc = z_[static_cast<std::size_t>(k)];
      for (const Entry& e : lcols_[static_cast<std::size_t>(k)]) {
        // e.index is a constraint row pivoted at a later step; its solved
        // value is already scattered into y.
        acc -= e.value * y[static_cast<std::size_t>(e.index)];
      }
      y[static_cast<std::size_t>(rperm_[static_cast<std::size_t>(k)])] = acc;
    }
  }

  void update(int leaving_row, const std::vector<double>& w) override {
    Eta eta;
    eta.pos = leaving_row;
    eta.wp = w[static_cast<std::size_t>(leaving_row)];
    for (int i = 0; i < m_; ++i) {
      if (i == leaving_row) continue;
      const double v = w[static_cast<std::size_t>(i)];
      if (v != 0.0) eta.w.push_back(Entry{i, v});
    }
    etas_.push_back(std::move(eta));
  }

 private:
  struct Entry {
    int index = 0;  // L: constraint row; U: earlier step; eta: position
    double value = 0.0;
  };
  struct Eta {
    int pos = 0;
    double wp = 0.0;         // pivot element w[pos]
    std::vector<Entry> w;    // off-pivot nonzeros of the ftran image
  };

  // Solves (factor only, no etas) B0 x = work_ (row-indexed) into `out`
  // (position-indexed). Consumes work_.
  void factor_solve(std::vector<double>& out) const {
    z_.resize(static_cast<std::size_t>(m_));
    for (int s = 0; s < m_; ++s) {
      const double zs =
          work_[static_cast<std::size_t>(rperm_[static_cast<std::size_t>(s)])];
      z_[static_cast<std::size_t>(s)] = zs;
      if (zs == 0.0) continue;
      for (const Entry& e : lcols_[static_cast<std::size_t>(s)]) {
        work_[static_cast<std::size_t>(e.index)] -= e.value * zs;
      }
    }
    for (int k = m_ - 1; k >= 0; --k) {
      const double vk =
          z_[static_cast<std::size_t>(k)] / udiag_[static_cast<std::size_t>(k)];
      z_[static_cast<std::size_t>(k)] = vk;
      if (vk == 0.0) continue;
      for (const Entry& e : ucols_[static_cast<std::size_t>(k)]) {
        z_[static_cast<std::size_t>(e.index)] -= e.value * vk;
      }
    }
    out.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = 0; k < m_; ++k) {
      out[static_cast<std::size_t>(cperm_[static_cast<std::size_t>(k)])] =
          z_[static_cast<std::size_t>(k)];
    }
  }

  void apply_etas_forward(std::vector<double>& x) const {
    for (const Eta& eta : etas_) {
      const double xp = x[static_cast<std::size_t>(eta.pos)];
      if (xp == 0.0) continue;
      const double t = xp / eta.wp;
      x[static_cast<std::size_t>(eta.pos)] = t;
      for (const Entry& e : eta.w) {
        x[static_cast<std::size_t>(e.index)] -= e.value * t;
      }
    }
  }

  int m_ = 0;
  double pivot_tol_ = 0.0;
  std::vector<std::vector<Entry>> lcols_;  // per step: (row, multiplier)
  std::vector<std::vector<Entry>> ucols_;  // per step k: (s < k, U(s,k))
  std::vector<double> udiag_;              // per step: U(k,k)
  std::vector<int> rperm_;                 // step -> pivot constraint row
  std::vector<int> rowstep_;               // constraint row -> step
  std::vector<int> cperm_;                 // step -> basis position
  std::vector<Eta> etas_;
  mutable std::vector<double> work_;  // row-indexed scratch
  mutable std::vector<double> z_;     // step-indexed scratch
  mutable std::vector<double> g_;     // position-indexed scratch
};

// Internal working problem: min c.x  s.t.  A x = b,  lb <= x <= ub, where
// columns [0, n_struct) are structural, [n_struct, n_struct+m) slacks and
// [n_struct+m, n_struct+2m) artificials. Structural columns are read
// straight from the LpProblem's CSC view; only slack/artificial columns are
// materialized here.
struct Working {
  int m = 0;        // rows
  int n_total = 0;  // all columns including slacks and artificials
  int n_struct = 0;
  std::vector<std::vector<ColEntry>> extra_cols;  // slacks then artificials
  std::vector<double> lb, ub;
  std::vector<double> cost;  // phase-2 objective
  std::vector<double> b;
};

class Engine final : public ColumnSource {
 public:
  Engine(const LpProblem& problem, const SimplexOptions& options)
      : options_(options) {
    build(problem);
    if (options_.engine == SimplexEngine::kDenseInverse) {
      rep_ = std::make_unique<DenseBasis>(w_.m, options_.pivot_tol);
    } else {
      rep_ = std::make_unique<SparseLuBasis>(w_.m, options_.pivot_tol);
    }
  }

  ColSpan col(int j) const override {
    if (j < w_.n_struct) {
      const std::vector<ColEntry>& c = problem_->column_entries(j);
      return ColSpan{c.data(), c.size()};
    }
    const std::vector<ColEntry>& c =
        w_.extra_cols[static_cast<std::size_t>(j - w_.n_struct)];
    return ColSpan{c.data(), c.size()};
  }

  Solution run(const Basis* warm) {
    Solution result;
    const std::int64_t limit =
        options_.max_iterations > 0
            ? options_.max_iterations
            : 200LL * (w_.m + w_.n_total) + 2000;

    bool warmed = false;
    if (warm != nullptr && !warm->empty()) {
      warmed = warm_start(*warm, limit, &result);
      result.warm_start_used = warmed;
      result.warm_start_fallback = !warmed;
    }

    if (!warmed) {
      init_basis();

      // Phase 1: minimize the sum of artificials.
      std::vector<double> phase1_cost(static_cast<std::size_t>(w_.n_total),
                                      0.0);
      for (int j = artificial_begin(); j < w_.n_total; ++j) {
        phase1_cost[static_cast<std::size_t>(j)] = 1.0;
      }
      const SolveStatus phase1 =
          optimize(phase1_cost, limit, &result.iterations);
      result.phase1_iterations = result.iterations;
      if (phase1 != SolveStatus::kOptimal) {
        result.status = phase1 == SolveStatus::kUnbounded
                            ? SolveStatus::kNumericalFailure  // phase 1 bounded
                            : phase1;
        return result;
      }
      // The phase-1 optimum is a residual: it only proves infeasibility
      // when it is nonzero *relative to the problem's scale*. A hard-coded
      // absolute cutoff misclassifies large-RHS formulations (residual
      // roundoff grows with ‖b‖) as infeasible.
      if (objective(phase1_cost) > infeasibility_threshold()) {
        result.status = SolveStatus::kInfeasible;
        return result;
      }
      // Pin artificials at zero for phase 2.
      for (int j = artificial_begin(); j < w_.n_total; ++j) {
        w_.lb[static_cast<std::size_t>(j)] = 0.0;
        w_.ub[static_cast<std::size_t>(j)] = 0.0;
        if (!in_basis_[static_cast<std::size_t>(j)]) {
          state_[static_cast<std::size_t>(j)] = NonbasicState::kAtLower;
        }
      }
    }

    // Phase 2: the real objective. An iteration-limit or budget cutoff
    // still returns the current feasible point and basis — truncated, not
    // failed.
    const SolveStatus phase2 = optimize(w_.cost, limit, &result.iterations);
    result.status = phase2;
    if (phase2 != SolveStatus::kOptimal &&
        phase2 != SolveStatus::kIterationLimit &&
        phase2 != SolveStatus::kTimeout) {
      return result;
    }
    result.basis = capture_basis();

    // Extract primal values for structural columns.
    std::vector<double> full = current_point();
    result.x.assign(full.begin(), full.begin() + w_.n_struct);
    result.objective = 0.0;
    for (int j = 0; j < w_.n_struct; ++j) {
      result.objective += w_.cost[static_cast<std::size_t>(j)] *
                          full[static_cast<std::size_t>(j)];
    }
    result.row_activity.resize(static_cast<std::size_t>(w_.m));
    for (int i = 0; i < w_.m; ++i) {
      // Row activity of the original row = rhs - slack value.
      const int slack = slack_begin() + i;
      result.row_activity[static_cast<std::size_t>(i)] =
          w_.b[static_cast<std::size_t>(i)] -
          full[static_cast<std::size_t>(slack)];
    }
    compute_duals(w_.cost, y_);
    result.duals = y_;
    return result;
  }

 private:
  int slack_begin() const { return w_.n_struct; }
  int artificial_begin() const { return w_.n_struct + w_.m; }

  std::vector<ColEntry>& extra(int j) {
    return w_.extra_cols[static_cast<std::size_t>(j - w_.n_struct)];
  }

  void build(const LpProblem& p) {
    problem_ = &p;
    w_.m = p.num_rows();
    w_.n_struct = p.num_columns();
    w_.n_total = w_.n_struct + 2 * w_.m;
    w_.extra_cols.resize(static_cast<std::size_t>(2 * w_.m));
    w_.lb.assign(static_cast<std::size_t>(w_.n_total), 0.0);
    w_.ub.assign(static_cast<std::size_t>(w_.n_total), kInfinity);
    w_.cost.assign(static_cast<std::size_t>(w_.n_total), 0.0);
    w_.b.resize(static_cast<std::size_t>(w_.m));

    for (int j = 0; j < w_.n_struct; ++j) {
      w_.lb[static_cast<std::size_t>(j)] = p.lower_bound(j);
      w_.ub[static_cast<std::size_t>(j)] = p.upper_bound(j);
      w_.cost[static_cast<std::size_t>(j)] = p.objective_coeff(j);
    }
    for (int i = 0; i < w_.m; ++i) {
      w_.b[static_cast<std::size_t>(i)] = p.row_rhs(i);
      const int slack = slack_begin() + i;
      extra(slack).push_back(ColEntry{i, 1.0});
      switch (p.row_sense(i)) {
        case RowSense::kLessEqual:
          w_.lb[static_cast<std::size_t>(slack)] = 0.0;
          w_.ub[static_cast<std::size_t>(slack)] = kInfinity;
          break;
        case RowSense::kEqual:
          w_.lb[static_cast<std::size_t>(slack)] = 0.0;
          w_.ub[static_cast<std::size_t>(slack)] = 0.0;
          break;
        case RowSense::kGreaterEqual:
          w_.lb[static_cast<std::size_t>(slack)] = -kInfinity;
          w_.ub[static_cast<std::size_t>(slack)] = 0.0;
          break;
      }
    }
  }

  // Rest value of a nonbasic variable.
  double nonbasic_value(int j) const {
    switch (state_[static_cast<std::size_t>(j)]) {
      case NonbasicState::kAtLower:
        return w_.lb[static_cast<std::size_t>(j)];
      case NonbasicState::kAtUpper:
        return w_.ub[static_cast<std::size_t>(j)];
      case NonbasicState::kFree:
        return 0.0;
    }
    return 0.0;
  }

  // Sets state_[j] to the natural rest position given its bounds.
  void rest_nonbasic(int j) {
    const double lo = w_.lb[static_cast<std::size_t>(j)];
    const double hi = w_.ub[static_cast<std::size_t>(j)];
    if (std::isfinite(lo)) {
      state_[static_cast<std::size_t>(j)] = NonbasicState::kAtLower;
    } else if (std::isfinite(hi)) {
      state_[static_cast<std::size_t>(j)] = NonbasicState::kAtUpper;
    } else {
      state_[static_cast<std::size_t>(j)] = NonbasicState::kFree;
    }
  }

  // Starts from the all-artificial basis: artificial i carries the residual
  // of row i with a +/-1 coefficient chosen so its value is nonnegative.
  void init_basis() {
    const auto n = static_cast<std::size_t>(w_.n_total);
    state_.assign(n, NonbasicState::kAtLower);
    in_basis_.assign(n, false);
    basis_.assign(static_cast<std::size_t>(w_.m), -1);

    for (int j = 0; j < artificial_begin(); ++j) rest_nonbasic(j);

    std::vector<double> residual = w_.b;
    for (int j = 0; j < artificial_begin(); ++j) {
      const double v = nonbasic_value(j);
      if (v == 0.0) continue;
      for (const ColEntry& e : col(j)) {
        residual[static_cast<std::size_t>(e.row)] -= e.coeff * v;
      }
    }
    xb_.resize(static_cast<std::size_t>(w_.m));
    std::vector<double> signs(static_cast<std::size_t>(w_.m));
    for (int i = 0; i < w_.m; ++i) {
      const double r = residual[static_cast<std::size_t>(i)];
      const double sign = r < 0.0 ? -1.0 : 1.0;
      const int art = artificial_begin() + i;
      // A failed warm-start attempt leaves artificials pinned at zero;
      // phase 1 needs their full range back.
      w_.lb[static_cast<std::size_t>(art)] = 0.0;
      w_.ub[static_cast<std::size_t>(art)] = kInfinity;
      extra(art).clear();
      extra(art).push_back(ColEntry{i, sign});
      basis_[static_cast<std::size_t>(i)] = art;
      in_basis_[static_cast<std::size_t>(art)] = true;
      signs[static_cast<std::size_t>(i)] = sign;  // B = diag(sign)
      xb_[static_cast<std::size_t>(i)] = std::abs(r);
    }
    rep_->install_diagonal(signs);
  }

  // Phase-1 residual above which the problem is declared infeasible,
  // scaled by the RHS magnitude so the test is invariant under row scaling.
  // The 10x headroom keeps the default (1e-6 for ‖b‖∞ <= 1) identical to
  // the solver's historical absolute cutoff.
  double infeasibility_threshold() const {
    double b_norm = 0.0;
    for (int i = 0; i < w_.m; ++i) {
      b_norm = std::max(b_norm, std::abs(w_.b[static_cast<std::size_t>(i)]));
    }
    return 10.0 * options_.feasibility_tol * std::max(1.0, b_norm);
  }

  Basis capture_basis() const {
    Basis basis;
    basis.num_rows = w_.m;
    basis.num_structural = w_.n_struct;
    basis.basic.assign(basis_.begin(), basis_.end());
    basis.nonbasic_state.resize(static_cast<std::size_t>(w_.n_total));
    for (int j = 0; j < w_.n_total; ++j) {
      basis.nonbasic_state[static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>(state_[static_cast<std::size_t>(j)]);
    }
    return basis;
  }

  // Installs a hinted basis: validates dimensions, refactorizes, and
  // repairs primal feasibility if the data changed under the basis.
  // Returns false (leaving the engine ready for init_basis) when the hint
  // is unusable; `result` accumulates the repair pivots either way.
  bool warm_start(const Basis& hint, std::int64_t limit, Solution* result) {
    if (hint.num_rows != w_.m || hint.num_structural != w_.n_struct ||
        static_cast<int>(hint.basic.size()) != w_.m ||
        static_cast<int>(hint.nonbasic_state.size()) != w_.n_total) {
      return false;
    }
    const auto n = static_cast<std::size_t>(w_.n_total);
    in_basis_.assign(n, false);
    basis_.assign(static_cast<std::size_t>(w_.m), -1);
    state_.assign(n, NonbasicState::kAtLower);
    // Artificials exist only to carry a cold phase 1; under a warm start
    // they are pinned at zero from the outset (a hinted basic artificial
    // keeps its fixed [0,0] range and the repair pass handles the rest).
    for (int i = 0; i < w_.m; ++i) {
      const int art = artificial_begin() + i;
      extra(art).clear();
      extra(art).push_back(ColEntry{i, 1.0});
      w_.lb[static_cast<std::size_t>(art)] = 0.0;
      w_.ub[static_cast<std::size_t>(art)] = 0.0;
    }
    for (int i = 0; i < w_.m; ++i) {
      const int j = hint.basic[static_cast<std::size_t>(i)];
      if (j < 0 || j >= w_.n_total || in_basis_[static_cast<std::size_t>(j)]) {
        return false;
      }
      basis_[static_cast<std::size_t>(i)] = j;
      in_basis_[static_cast<std::size_t>(j)] = true;
    }
    for (int j = 0; j < w_.n_total; ++j) {
      if (in_basis_[static_cast<std::size_t>(j)]) continue;
      const auto raw = hint.nonbasic_state[static_cast<std::size_t>(j)];
      NonbasicState s = raw <= 2 ? static_cast<NonbasicState>(raw)
                                 : NonbasicState::kAtLower;
      // Bounds may have changed since the snapshot; an infinite rest
      // position is meaningless, so re-derive it from the current bounds.
      if ((s == NonbasicState::kAtLower &&
           !std::isfinite(w_.lb[static_cast<std::size_t>(j)])) ||
          (s == NonbasicState::kAtUpper &&
           !std::isfinite(w_.ub[static_cast<std::size_t>(j)]))) {
        rest_nonbasic(j);
      } else {
        state_[static_cast<std::size_t>(j)] = s;
      }
    }
    xb_.resize(static_cast<std::size_t>(w_.m));
    if (!refactorize()) {
      // A stale hint can be singular against the current matrix (e.g. a
      // coefficient edit emptied a basic column). Swap the dependent
      // columns for row artificials and retry — the repair pass below then
      // acts as a phase 1 restricted to the patched rows.
      patch_singular_basis();
      if (!refactorize()) return false;
    }
    return repair_primal_feasibility(limit, result);
  }

  // Finds the linearly dependent columns of the current basis and replaces
  // each with the artificial of a row no independent column pivots on, so
  // the basis becomes nonsingular by construction. Displaced columns rest
  // at a bound. Called only on the warm-start path, where the artificials
  // are pinned at [0, 0]: any value the patched artificial has to carry
  // shows up as a bound violation for repair_primal_feasibility to clear.
  void patch_singular_basis() {
    if (profile_ != nullptr) ++profile_->basis_patches;
    const int m = w_.m;
    std::vector<std::vector<double>> reduced;  // accepted columns, reduced
    std::vector<int> pivot_rows;
    std::vector<char> row_used(static_cast<std::size_t>(m), 0);
    std::vector<int> dependent;
    for (int p = 0; p < m; ++p) {
      std::vector<double> v(static_cast<std::size_t>(m), 0.0);
      const int j = basis_[static_cast<std::size_t>(p)];
      for (const ColEntry& e : col(j)) {
        v[static_cast<std::size_t>(e.row)] = e.coeff;
      }
      for (std::size_t k = 0; k < reduced.size(); ++k) {
        const int r = pivot_rows[k];
        const double f = v[static_cast<std::size_t>(r)] /
                         reduced[k][static_cast<std::size_t>(r)];
        if (f == 0.0) continue;
        for (int i = 0; i < m; ++i) {
          v[static_cast<std::size_t>(i)] -=
              f * reduced[k][static_cast<std::size_t>(i)];
        }
      }
      int pivot = -1;
      double best = options_.pivot_tol;
      for (int i = 0; i < m; ++i) {
        if (row_used[static_cast<std::size_t>(i)]) continue;
        if (std::abs(v[static_cast<std::size_t>(i)]) > best) {
          best = std::abs(v[static_cast<std::size_t>(i)]);
          pivot = i;
        }
      }
      if (pivot < 0) {
        dependent.push_back(p);
        continue;
      }
      row_used[static_cast<std::size_t>(pivot)] = 1;
      reduced.push_back(std::move(v));
      pivot_rows.push_back(pivot);
    }
    int next_free_row = 0;
    for (const int p : dependent) {
      while (row_used[static_cast<std::size_t>(next_free_row)]) {
        ++next_free_row;
      }
      const int old = basis_[static_cast<std::size_t>(p)];
      in_basis_[static_cast<std::size_t>(old)] = false;
      rest_nonbasic(old);
      // The uncovered row's artificial cannot already be basic: it would
      // have pivoted on that row.
      const int art = artificial_begin() + next_free_row;
      row_used[static_cast<std::size_t>(next_free_row)] = 1;
      basis_[static_cast<std::size_t>(p)] = art;
      in_basis_[static_cast<std::size_t>(art)] = true;
    }
  }

  // The hinted basis solves B x_B = b - N x_N exactly, but data changes
  // (rhs, bounds, coefficients) may have pushed basic values outside their
  // bounds. Relax only the violated variables' offending bound and minimize
  // a cost that pushes each one back toward its range — phase 1 restricted
  // to the actual violations. Returns false when the violation cannot be
  // driven out (caller falls back to a cold solve, which settles
  // feasibility authoritatively).
  bool repair_primal_feasibility(std::int64_t limit, Solution* result) {
    const double tol = options_.feasibility_tol;
    struct Relaxed {
      int column;
      double lb, ub;    // true bounds, restored after the pass
      double direction; // +1: came down toward ub, -1: came up toward lb
    };
    // The linear repair objective can trade one variable's violation
    // against another's depth inside its range, so a single pass is not
    // always enough; refreshed violation sets settle the common cases and
    // anything deeper falls back to a cold solve.
    for (int pass = 0; pass < 3; ++pass) {
      std::vector<Relaxed> relaxed;
      std::vector<double> repair_cost;
      for (int i = 0; i < w_.m; ++i) {
        const int j = basis_[static_cast<std::size_t>(i)];
        const double v = xb_[static_cast<std::size_t>(i)];
        const double lo = w_.lb[static_cast<std::size_t>(j)];
        const double hi = w_.ub[static_cast<std::size_t>(j)];
        const double scale = 1.0 + std::abs(v);
        double direction = 0.0;
        if (v > hi + tol * scale) {
          direction = +1.0;  // too high: minimize it back down
        } else if (v < lo - tol * scale) {
          direction = -1.0;  // too low: maximize it back up
        } else {
          continue;
        }
        if (repair_cost.empty()) {
          repair_cost.assign(static_cast<std::size_t>(w_.n_total), 0.0);
        }
        relaxed.push_back(Relaxed{j, lo, hi, direction});
        repair_cost[static_cast<std::size_t>(j)] = direction;
        // Swap in a temporary box whose finite end is the violated bound:
        // the cost drives the variable exactly back to it and no further,
        // which also keeps the repair objective bounded (relaxing to an
        // open ray can make the repair LP unbounded through compensating
        // variables).
        if (direction > 0.0) {
          w_.lb[static_cast<std::size_t>(j)] = hi;  // box [ub, inf)
          w_.ub[static_cast<std::size_t>(j)] = kInfinity;
        } else {
          w_.lb[static_cast<std::size_t>(j)] = -kInfinity;  // box (-inf, lb]
          w_.ub[static_cast<std::size_t>(j)] = lo;
        }
      }
      if (relaxed.empty()) return true;  // primal feasible

      std::int64_t repair_iterations = 0;
      const SolveStatus status =
          optimize(repair_cost, limit, &repair_iterations);
      result->iterations += repair_iterations;
      result->phase1_iterations += repair_iterations;
      for (const Relaxed& r : relaxed) {
        const auto j = static_cast<std::size_t>(r.column);
        if (!in_basis_[j]) {
          // Parked on the finite end of the temporary box — numerically the
          // *opposite* true bound. Rename the rest state so restoring the
          // box keeps the variable's value unchanged.
          if (r.direction > 0.0 && state_[j] == NonbasicState::kAtLower) {
            state_[j] = NonbasicState::kAtUpper;  // value ub, was temp lb
          } else if (r.direction < 0.0 &&
                     state_[j] == NonbasicState::kAtUpper) {
            state_[j] = NonbasicState::kAtLower;  // value lb, was temp ub
          }
        }
        w_.lb[j] = r.lb;
        w_.ub[j] = r.ub;
      }
      if (status != SolveStatus::kOptimal) return false;
      // Nonbasic variables are back on true bounds after the renaming
      // above; only basic values can still violate, which the next pass
      // re-collects.
    }
    for (int i = 0; i < w_.m; ++i) {
      const int j = basis_[static_cast<std::size_t>(i)];
      const double v = xb_[static_cast<std::size_t>(i)];
      const double scale = 1.0 + std::abs(v);
      if (v > w_.ub[static_cast<std::size_t>(j)] + tol * scale ||
          v < w_.lb[static_cast<std::size_t>(j)] - tol * scale) {
        return false;
      }
    }
    return true;
  }

  // y = c_B^T B^{-1}, via the representation's btran.
  void compute_duals(const std::vector<double>& cost,
                     std::vector<double>& y) {
    cb_.resize(static_cast<std::size_t>(w_.m));
    for (int i = 0; i < w_.m; ++i) {
      cb_[static_cast<std::size_t>(i)] = cost[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(i)])];
    }
    rep_->btran(cb_, y);
  }

  double reduced_cost(int j, const std::vector<double>& cost,
                      const std::vector<double>& y) const {
    double d = cost[static_cast<std::size_t>(j)];
    for (const ColEntry& e : col(j)) {
      d -= y[static_cast<std::size_t>(e.row)] * e.coeff;
    }
    return d;
  }

  double objective(const std::vector<double>& cost) const {
    double value = 0.0;
    const std::vector<double> point = current_point();
    for (int j = 0; j < w_.n_total; ++j) {
      value += cost[static_cast<std::size_t>(j)] *
               point[static_cast<std::size_t>(j)];
    }
    return value;
  }

  std::vector<double> current_point() const {
    std::vector<double> x(static_cast<std::size_t>(w_.n_total), 0.0);
    for (int j = 0; j < w_.n_total; ++j) {
      if (!in_basis_[static_cast<std::size_t>(j)]) x[static_cast<std::size_t>(j)] = nonbasic_value(j);
    }
    for (int i = 0; i < w_.m; ++i) {
      x[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
          xb_[static_cast<std::size_t>(i)];
    }
    return x;
  }

  // Rebuilds the basis representation and xb_; returns false on a singular
  // basis (numerical failure). Timed as its own profile phase — it is the
  // expensive step the refactor_interval knob trades against update drift,
  // and the number ROADMAP item 1 wants pinned.
  bool refactorize() {
    if (profile_ == nullptr) return refactorize_impl();
    const std::uint64_t t0 = prof_now_ns();
    const bool ok = refactorize_impl();
    ++profile_->refactorizations;
    profile_->refactor_s += static_cast<double>(prof_now_ns() - t0) * 1e-9;
    return ok;
  }

  bool refactorize_impl() {
    if (!rep_->refactorize(*this, basis_)) return false;
    recompute_basic_values();
    return true;
  }

  void recompute_basic_values() {
    std::vector<double> residual = w_.b;
    for (int j = 0; j < w_.n_total; ++j) {
      if (in_basis_[static_cast<std::size_t>(j)]) continue;
      const double v = nonbasic_value(j);
      if (v == 0.0) continue;
      for (const ColEntry& e : col(j)) {
        residual[static_cast<std::size_t>(e.row)] -= e.coeff * v;
      }
    }
    rep_->solve_dense(residual, xb_);
  }

  // Core primal iteration loop for a given cost vector; assumes the current
  // basis is primal feasible.
  SolveStatus optimize(const std::vector<double>& cost, std::int64_t limit,
                       std::int64_t* iteration_counter) {
    int degenerate_run = 0;
    int since_refactor = 0;
    std::vector<double> w(static_cast<std::size_t>(w_.m));

    while (true) {
      if (*iteration_counter >= limit) return SolveStatus::kIterationLimit;
      // Watchdog: the shared budget is polled at pivot granularity, so a
      // pathological basis can never stall past the caller's deadline by
      // more than one pivot's work.
      if (options_.budget != nullptr && options_.budget->exhausted()) {
        return options_.budget->exhausted_status();
      }

      // Phase attribution (profiled solves only): prof_t0 rolls forward at
      // each phase boundary so the three windows tile the iteration.
      std::uint64_t prof_t0 = profile_ != nullptr ? prof_now_ns() : 0;

      compute_duals(cost, y_);
      const std::vector<double>& y = y_;
      const bool bland = degenerate_run > options_.degenerate_before_bland;

      // Pricing. Reduced costs are evaluated lazily: columns are scanned in
      // rotating sections of `section` and the best violated candidate of
      // the first section containing one enters. Optimality is declared
      // only after a whole wrap finds no candidate, so partial pricing
      // changes the pivot sequence, never the answer. Bland's rule needs
      // the lowest eligible index for its termination guarantee and scans
      // from zero.
      const int section =
          options_.pricing_section > 0
              ? options_.pricing_section
              : std::max(64, w_.n_total / 8);
      int entering = -1;
      double best_violation = options_.optimality_tol;
      int direction = +1;
      int scanned = 0;
      int j = bland ? 0 : pricing_cursor_;
      if (j >= w_.n_total) j = 0;
      for (; scanned < w_.n_total; ++scanned) {
        const int col = j;
        ++j;
        if (j == w_.n_total) j = 0;
        if (!bland && entering >= 0 && scanned % section == 0 &&
            scanned > 0) {
          break;  // section boundary with a candidate in hand
        }
        if (in_basis_[static_cast<std::size_t>(col)]) continue;
        const double lo = w_.lb[static_cast<std::size_t>(col)];
        const double hi = w_.ub[static_cast<std::size_t>(col)];
        if (lo == hi) continue;  // fixed variable never enters
        const double d = reduced_cost(col, cost, y);
        int dir = 0;
        double violation = 0.0;
        switch (state_[static_cast<std::size_t>(col)]) {
          case NonbasicState::kAtLower:
            if (d < -options_.optimality_tol) {
              dir = +1;
              violation = -d;
            }
            break;
          case NonbasicState::kAtUpper:
            if (d > options_.optimality_tol) {
              dir = -1;
              violation = d;
            }
            break;
          case NonbasicState::kFree:
            if (std::abs(d) > options_.optimality_tol) {
              dir = d < 0.0 ? +1 : -1;
              violation = std::abs(d);
            }
            break;
        }
        if (dir == 0) continue;
        if (bland) {  // first eligible index
          entering = col;
          direction = dir;
          break;
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = col;
          direction = dir;
        }
      }
      if (!bland) pricing_cursor_ = j;
      if (profile_ != nullptr) {
        const std::uint64_t t1 = prof_now_ns();
        profile_->pricing_s += static_cast<double>(t1 - prof_t0) * 1e-9;
        prof_t0 = t1;
      }
      if (entering < 0) return SolveStatus::kOptimal;

      rep_->ftran(col(entering), w);

      // Ratio test. The entering variable moves by t >= 0 in `direction`;
      // basic variable i moves at rate -direction * w_i.
      const double own_gap =
          w_.ub[static_cast<std::size_t>(entering)] -
          w_.lb[static_cast<std::size_t>(entering)];
      double t_best = std::isfinite(own_gap) ? own_gap : kInfinity;
      int leaving_row = -1;       // -1 => bound flip
      bool leaving_at_upper = false;
      double best_pivot_mag = 0.0;  // |w_i| of the current leaving row
      for (int i = 0; i < w_.m; ++i) {
        const double rate = -direction * w[static_cast<std::size_t>(i)];
        if (std::abs(rate) <= options_.pivot_tol) continue;
        const int bj = basis_[static_cast<std::size_t>(i)];
        const double xi = xb_[static_cast<std::size_t>(i)];
        double t_i = kInfinity;
        bool hits_upper = false;
        if (rate > 0.0) {
          const double hi = w_.ub[static_cast<std::size_t>(bj)];
          if (std::isfinite(hi)) {
            t_i = (hi - xi) / rate;
            hits_upper = true;
          }
        } else {
          const double lo = w_.lb[static_cast<std::size_t>(bj)];
          if (std::isfinite(lo)) {
            t_i = (lo - xi) / rate;
            hits_upper = false;
          }
        }
        if (t_i < -options_.feasibility_tol) t_i = 0.0;  // clamp tiny drift
        t_i = std::max(t_i, 0.0);
        if (!std::isfinite(t_i)) continue;
        // Among (near-)equal ratios — the norm in degenerate scheduling
        // LPs — prefer the largest |pivot|: near-singular pivots poison
        // the updated inverse and force refactorize churn. Under Bland's
        // rule the lowest basic index wins instead (termination proof).
        bool take = false;
        if (t_i < t_best - 1e-12) {
          take = true;
        } else if (t_i <= t_best + 1e-12 && leaving_row >= 0) {
          take = bland ? bj < basis_[static_cast<std::size_t>(leaving_row)]
                       : std::abs(rate) > best_pivot_mag;
        }
        if (take) {
          t_best = std::min(t_best, t_i);
          leaving_row = i;
          leaving_at_upper = hits_upper;
          best_pivot_mag = std::abs(rate);
        }
      }

      if (profile_ != nullptr) {
        const std::uint64_t t1 = prof_now_ns();
        profile_->ratio_test_s += static_cast<double>(t1 - prof_t0) * 1e-9;
        prof_t0 = t1;
        if (std::isfinite(t_best) && t_best <= options_.feasibility_tol) {
          ++profile_->degenerate_pivots;
        }
      }
      if (!std::isfinite(t_best)) return SolveStatus::kUnbounded;

      degenerate_run = t_best <= options_.feasibility_tol
                           ? degenerate_run + 1
                           : 0;
      ++*iteration_counter;
      if (options_.budget != nullptr) options_.budget->charge_pivot();

      if (leaving_row < 0) {
        // Bound flip: entering travels its whole gap, basis unchanged.
        for (int i = 0; i < w_.m; ++i) {
          xb_[static_cast<std::size_t>(i)] +=
              -direction * w[static_cast<std::size_t>(i)] * t_best;
        }
        state_[static_cast<std::size_t>(entering)] =
            state_[static_cast<std::size_t>(entering)] ==
                    NonbasicState::kAtLower
                ? NonbasicState::kAtUpper
                : NonbasicState::kAtLower;
        if (profile_ != nullptr) {
          ++profile_->bound_flips;
          profile_->basis_update_s +=
              static_cast<double>(prof_now_ns() - prof_t0) * 1e-9;
        }
        continue;
      }

      // Pivot: update values, basis bookkeeping and the representation.
      const double entering_value = nonbasic_value(entering) +
                                    direction * t_best;
      for (int i = 0; i < w_.m; ++i) {
        if (i == leaving_row) continue;
        xb_[static_cast<std::size_t>(i)] +=
            -direction * w[static_cast<std::size_t>(i)] * t_best;
      }
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      in_basis_[static_cast<std::size_t>(leaving)] = false;
      state_[static_cast<std::size_t>(leaving)] =
          leaving_at_upper ? NonbasicState::kAtUpper : NonbasicState::kAtLower;
      basis_[static_cast<std::size_t>(leaving_row)] = entering;
      in_basis_[static_cast<std::size_t>(entering)] = true;
      xb_[static_cast<std::size_t>(leaving_row)] = entering_value;

      const double pivot = w[static_cast<std::size_t>(leaving_row)];
      if (std::abs(pivot) <= options_.pivot_tol) {
        if (profile_ != nullptr) {
          profile_->basis_update_s +=
              static_cast<double>(prof_now_ns() - prof_t0) * 1e-9;
        }
        if (!refactorize()) return SolveStatus::kNumericalFailure;
        continue;
      }
      rep_->update(leaving_row, w);
      if (profile_ != nullptr) {
        profile_->basis_update_s +=
            static_cast<double>(prof_now_ns() - prof_t0) * 1e-9;
      }

      if (++since_refactor >= options_.refactor_interval) {
        since_refactor = 0;
        if (!refactorize()) return SolveStatus::kNumericalFailure;
      }
    }
  }

  SimplexOptions options_;
  const LpProblem* problem_ = nullptr;
  Working w_;
  std::unique_ptr<BasisRep> rep_;
  /// The thread's active profiling scope, cached once per engine so the
  /// pivot loop pays a plain pointer test, not a thread_local lookup.
  SolveProfile* profile_ = current_profile();
  int pricing_cursor_ = 0;             // partial-pricing scan position
  std::vector<int> basis_;             // column basic in each row
  std::vector<bool> in_basis_;         // per column
  std::vector<NonbasicState> state_;   // per column, meaningful if nonbasic
  std::vector<double> xb_;             // values of basic variables
  std::vector<double> cb_;             // btran input scratch
  std::vector<double> y_;              // dual scratch, reused per pivot
};

}  // namespace

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

Solution SimplexSolver::solve(const LpProblem& problem,
                              const Basis* warm) const {
  if (!obs::enabled()) {
    Solution result = solve_impl(problem, warm);
    if (SolveProfile* profile = current_profile()) {
      ++profile->solves;
      profile->pivots += result.iterations;
    }
    return result;
  }

  Solution result;
  {
    // The timer's destructor stamps result.solve_seconds when this scope
    // closes, i.e. after the assignment below.
    obs::ScopedTimer timer(
        &result.solve_seconds,
        &obs::registry().histogram("lp.simplex.solve_seconds"));
    result = solve_impl(problem, warm);
  }
  if (SolveProfile* profile = current_profile()) {
    ++profile->solves;
    profile->pivots += result.iterations;
  }
  obs::Registry& reg = obs::registry();
  reg.counter("lp.simplex.solves").add();
  reg.counter("lp.simplex.pivots").add(result.iterations);
  if (result.status == SolveStatus::kInfeasible) {
    reg.counter("lp.simplex.infeasible").add();
  }
  if (result.warm_start_used) reg.counter("lp.simplex.warm_starts").add();
  if (result.warm_start_fallback) {
    reg.counter("lp.simplex.warm_start_fallbacks").add();
  }
  if (options_.budget != nullptr && options_.budget->exhausted() &&
      (result.status == SolveStatus::kTimeout ||
       result.status == SolveStatus::kIterationLimit)) {
    reg.counter("lp.budget_exhausted").add();
  }
  obs::emit(obs::TraceEvent("simplex_solve")
                .field("rows", problem.num_rows())
                .field("cols", problem.num_columns())
                .field("status", to_string(result.status))
                .field("pivots", result.iterations)
                .field("phase1_iters", result.phase1_iterations)
                .field("phase2_iters",
                       result.iterations - result.phase1_iterations)
                .field("objective", result.objective)
                .field("warm_start", result.warm_start_used)
                .field("warm_start_fallback", result.warm_start_fallback)
                .field("wall_s", result.solve_seconds));
  return result;
}

Solution SimplexSolver::solve_impl(const LpProblem& problem,
                                   const Basis* warm) const {
  if (problem.num_rows() == 0) {
    // Pure bound problem: each variable rests at whichever bound minimizes.
    Solution result;
    result.status = SolveStatus::kOptimal;
    result.x.resize(static_cast<std::size_t>(problem.num_columns()));
    for (int j = 0; j < problem.num_columns(); ++j) {
      const double c = problem.objective_coeff(j);
      const double lo = problem.lower_bound(j);
      const double hi = problem.upper_bound(j);
      double v;
      if (c > 0.0) {
        v = lo;
      } else if (c < 0.0) {
        v = hi;
      } else {
        v = std::isfinite(lo) ? lo : (std::isfinite(hi) ? hi : 0.0);
      }
      if (!std::isfinite(v)) {
        result.status = SolveStatus::kUnbounded;
        return result;
      }
      result.x[static_cast<std::size_t>(j)] = v;
      result.objective += c * v;
    }
    return result;
  }
  Engine engine(problem, options_);
  return engine.run(warm);
}

}  // namespace flowtime::lp
