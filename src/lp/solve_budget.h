// Deadline-bounded solving (DESIGN.md §10 "Graceful degradation").
//
// A SolveBudget caps how much work a chain of LP solves may spend before
// the caller's slot deadline: a wall-clock limit (monotonic clock, checked
// at pivot granularity), a shared pivot cap across every solve that carries
// the same budget, and an optional cooperative cancellation token. The
// budget is *shared*, not per-solve: FlowTimeScheduler creates one per
// re-plan and threads it through every simplex/lexmin/branch-and-bound call
// of that re-plan, so a pathological first solve cannot leave later solves
// with a fresh allowance.
//
// Determinism: the pivot cap and the cancel token are deterministic given a
// deterministic pivot sequence; the wall-clock limit is not (it depends on
// machine speed). Tests that assert byte-identical degraded placements must
// therefore drive the ladder with the pivot cap, never the wall clock —
// see FlowTimeConfig::solver_pivot_budget.
//
// Non-owning by design: SimplexOptions carries a `SolveBudget*`; a null
// pointer (the default everywhere) means unlimited and costs nothing on the
// hot path, so the ladder is transparent when unused.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "lp/model.h"

namespace flowtime::lp {

class SolveBudget {
 public:
  SolveBudget() = default;

  /// Wall-clock allowance from *now*; <= 0 leaves the clock unlimited.
  void set_wall_clock_ms(double ms) {
    if (ms <= 0.0) {
      has_deadline_ = false;
      return;
    }
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
  }

  /// Total pivots every solve sharing this budget may spend; <= 0 = unlimited.
  void set_pivot_cap(std::int64_t cap) { pivot_cap_ = cap > 0 ? cap : 0; }

  /// Cooperative cancellation: the solver polls `cancel` between pivots and
  /// stops (status kTimeout) once it reads true. Not owned; may be null.
  void set_cancel_token(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// False when no limit is set: callers may skip installing the budget
  /// entirely, keeping the unlimited path identical to pre-budget builds.
  bool limited() const {
    return has_deadline_ || pivot_cap_ > 0 || cancel_ != nullptr;
  }

  /// Called by the simplex engine once per pivot (and by branch-and-bound
  /// per node); feeds the shared pivot cap.
  void charge_pivot() { ++pivots_used_; }
  std::int64_t pivots_used() const { return pivots_used_; }

  /// Checked at pivot granularity. Cheapest test first: the deterministic
  /// pivot cap, then the cancel token, then the clock (one steady_clock
  /// read per pivot — far below the cost of a pivot's dense BTRAN/FTRAN).
  /// Exhaustion latches, so the status query below stays consistent even
  /// if the caller re-tests after the deadline has drifted further.
  bool exhausted() {
    if (exhausted_) return true;
    if (pivot_cap_ > 0 && pivots_used_ >= pivot_cap_) {
      exhausted_ = true;
      timed_out_ = false;
      return true;
    }
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      exhausted_ = true;
      timed_out_ = true;  // cancellation reports as a timeout
      return true;
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      exhausted_ = true;
      timed_out_ = true;
      return true;
    }
    return false;
  }

  /// What a solve cut short by this budget should report: kTimeout for the
  /// watchdog/cancellation, kIterationLimit for the pivot cap. Meaningful
  /// only after exhausted() returned true.
  SolveStatus exhausted_status() const {
    return timed_out_ ? SolveStatus::kTimeout : SolveStatus::kIterationLimit;
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::int64_t pivot_cap_ = 0;
  std::int64_t pivots_used_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
  bool exhausted_ = false;
  bool timed_out_ = false;
};

}  // namespace flowtime::lp
