#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "util/logging.h"

namespace flowtime::lp {

namespace {

struct Node {
  // Bound overrides relative to the root problem, column -> (lower, upper).
  std::vector<std::pair<int, std::pair<double, double>>> bound_changes;
  double parent_bound = -kInfinity;  // LP bound of the parent, for ordering
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->parent_bound > b->parent_bound;  // best-bound first
  }
};

}  // namespace

BranchAndBound::BranchAndBound(BranchAndBoundOptions options)
    : options_(options) {}

Solution BranchAndBound::solve(const LpProblem& problem,
                               const std::vector<int>& integer_columns) const {
  SimplexSolver lp(options_.lp_options);

  Solution best;
  best.status = SolveStatus::kInfeasible;
  best.objective = kInfinity;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  open.push(std::make_shared<Node>());

  // Work on a private copy whose bounds we rewrite per node.
  LpProblem work = problem;
  std::int64_t explored = 0;
  bool hit_node_limit = false;
  bool hit_budget = false;

  while (!open.empty()) {
    if (explored >= options_.max_nodes) {
      hit_node_limit = true;
      break;
    }
    // The node LPs already stop at the shared budget; this check stops the
    // tree search itself so an exhausted budget cannot keep opening nodes
    // whose relaxations each fail after one pivot.
    if (options_.lp_options.budget != nullptr &&
        options_.lp_options.budget->exhausted()) {
      hit_budget = true;
      break;
    }
    const std::shared_ptr<Node> node = open.top();
    open.pop();
    ++explored;

    // Apply this node's bounds on top of the root bounds.
    for (int j = 0; j < problem.num_columns(); ++j) {
      work.set_bounds(j, problem.lower_bound(j), problem.upper_bound(j));
    }
    bool bounds_ok = true;
    for (const auto& [column, bounds] : node->bound_changes) {
      const double lo = std::max(bounds.first, problem.lower_bound(column));
      const double hi = std::min(bounds.second, problem.upper_bound(column));
      if (lo > hi) {
        bounds_ok = false;
        break;
      }
      work.set_bounds(column, lo, hi);
    }
    if (!bounds_ok) continue;

    const Solution relaxed = lp.solve(work);
    if (relaxed.status == SolveStatus::kInfeasible) continue;
    if (relaxed.status != SolveStatus::kOptimal) {
      // Propagate solver trouble: a node we cannot bound poisons optimality.
      if (best.status != SolveStatus::kOptimal) best.status = relaxed.status;
      continue;
    }
    if (relaxed.objective >= best.objective - 1e-9) continue;  // pruned

    // Find the most fractional integer column.
    int branch_column = -1;
    double worst_fraction = options_.integrality_tol;
    for (int j : integer_columns) {
      const double v = relaxed.x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac > worst_fraction) {
        worst_fraction = frac;
        branch_column = j;
      }
    }

    if (branch_column < 0) {
      // Integral: candidate incumbent.
      best = relaxed;
      best.status = SolveStatus::kOptimal;
      continue;
    }

    const double v = relaxed.x[static_cast<std::size_t>(branch_column)];
    auto down = std::make_shared<Node>(*node);
    down->parent_bound = relaxed.objective;
    down->bound_changes.emplace_back(
        branch_column, std::make_pair(-kInfinity, std::floor(v)));
    auto up = std::make_shared<Node>(*node);
    up->parent_bound = relaxed.objective;
    up->bound_changes.emplace_back(
        branch_column, std::make_pair(std::ceil(v), kInfinity));
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (hit_node_limit && best.status != SolveStatus::kOptimal) {
    best.status = SolveStatus::kIterationLimit;
  }
  if (hit_budget && best.status != SolveStatus::kOptimal) {
    best.status = options_.lp_options.budget->exhausted_status();
  }
  best.iterations = explored;
  if (best.status == SolveStatus::kOptimal) {
    // Snap near-integral values exactly.
    for (int j : integer_columns) {
      double& v = best.x[static_cast<std::size_t>(j)];
      v = std::round(v);
    }
    best.objective = problem.objective_value(best.x);
  }
  return best;
}

}  // namespace flowtime::lp
