// Linear-program model types.
//
// FlowTime's scheduler (paper §V) formulates resource allocation as an ILP
// whose constraint matrix is totally unimodular, so an LP solver returning
// vertex solutions yields the integral optimum. No LP library ships in this
// environment, so the repository carries its own solver stack:
//
//   LpProblem (this header)  — column/row model with bounds,
//   SimplexSolver            — two-phase bounded-variable primal simplex,
//   BranchAndBound           — reference MILP solver used by tests,
//   LexMinMaxSolver          — the paper's lexicographic min-max objective.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace flowtime::lp {

/// +infinity for variable/row bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Row sense for constraints.
enum class RowSense { kLessEqual, kEqual, kGreaterEqual };

/// One nonzero coefficient of a row.
struct RowEntry {
  int column = 0;
  double coeff = 0.0;
};

/// One nonzero coefficient of a column (the CSC-style view the revised
/// simplex prices and factorizes from).
struct ColEntry {
  int row = 0;
  double coeff = 0.0;
};

/// Solver termination status.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
  /// A SolveBudget's wall-clock watchdog (or cancellation token) fired
  /// mid-solve. Like kIterationLimit, the solve stopped at a feasible but
  /// unproven point when one was available.
  kTimeout,
};

const char* to_string(SolveStatus status);

/// Snapshot of a simplex basis, for warm-starting a later solve.
///
/// Column indices use the solver's internal layout: [0, num_structural)
/// are the problem's columns, [num_structural, num_structural + num_rows)
/// the row slacks, and [num_structural + num_rows, num_structural +
/// 2*num_rows) the phase-1 artificials (basic artificials survive only in
/// degenerate optima, pinned at zero). `nonbasic_state` records the rest
/// position of every column (0 = at lower bound, 1 = at upper bound,
/// 2 = free); entries for basic columns are present but meaningless.
///
/// A basis is only a *hint*: SimplexSolver validates dimensions, repairs
/// primal feasibility after data changes, and falls back to a cold solve
/// when the hint is unusable, so callers may pass stale bases freely as
/// long as the problem shape (rows/columns) still matches.
struct Basis {
  int num_rows = 0;
  int num_structural = 0;
  std::vector<int> basic;  // column basic in row i, one per row
  std::vector<std::uint8_t> nonbasic_state;  // one per internal column

  bool empty() const { return basic.empty(); }
};

/// Result of an LP (or MILP) solve.
struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> x;             // primal values, one per column
  std::vector<double> row_activity;  // Ax, one per row
  std::vector<double> duals;         // y, one per row (LP only)
  std::int64_t iterations = 0;       // simplex pivots (or B&B nodes)
  std::int64_t phase1_iterations = 0;  // pivots spent reaching feasibility
  /// Wall time of the solve; populated only while obs is enabled.
  double solve_seconds = 0.0;
  /// Final basis, for warm-starting the next solve of a same-shaped
  /// problem. Empty when the solve failed before reaching a basis.
  Basis basis;
  /// True when a caller-provided warm basis was actually used.
  bool warm_start_used = false;
  /// True when a caller-provided warm basis had to be abandoned (shape
  /// mismatch, singular, or unrepairable) and the solve restarted cold.
  bool warm_start_fallback = false;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

/// A minimization LP in computational form:
///
///   minimize    c^T x
///   subject to  row_lhs ( <= | = | >= ) rhs
///               lb <= x <= ub
///
/// Columns and rows are added incrementally; the solvers treat the problem
/// as immutable input. Coefficients are stored both row-wise (for row
/// evaluation and the mutation API) and column-wise (column_entries, the
/// view the revised simplex consumes); the two views are kept in sync by
/// every mutator.
class LpProblem {
 public:
  /// Adds a variable, returns its column index.
  int add_column(double objective, double lower, double upper,
                 std::string name = {});

  /// Adds a constraint row from sparse entries, returns its row index.
  /// Entries with duplicate column indices are summed.
  int add_row(RowSense sense, double rhs, std::vector<RowEntry> entries,
              std::string name = {});

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  double objective_coeff(int column) const {
    return columns_[static_cast<std::size_t>(column)].objective;
  }
  double lower_bound(int column) const {
    return columns_[static_cast<std::size_t>(column)].lower;
  }
  double upper_bound(int column) const {
    return columns_[static_cast<std::size_t>(column)].upper;
  }
  const std::string& column_name(int column) const {
    return columns_[static_cast<std::size_t>(column)].name;
  }

  RowSense row_sense(int row) const {
    return rows_[static_cast<std::size_t>(row)].sense;
  }
  double row_rhs(int row) const {
    return rows_[static_cast<std::size_t>(row)].rhs;
  }
  const std::vector<RowEntry>& row_entries(int row) const {
    return rows_[static_cast<std::size_t>(row)].entries;
  }
  /// Column-wise (CSC-style) view of the constraint matrix, maintained
  /// incrementally by add_row / set_row_coeff. Entries are sorted by row
  /// index and never carry explicit zeros. The revised simplex prices and
  /// factorizes straight from this view, so re-solves of a mutated problem
  /// (the lexmin driver's freeze-and-resolve loop) pay no column rebuild.
  const std::vector<ColEntry>& column_entries(int column) const {
    return col_entries_[static_cast<std::size_t>(column)];
  }
  const std::string& row_name(int row) const {
    return rows_[static_cast<std::size_t>(row)].name;
  }

  /// Mutators used by the lexicographic driver to freeze binding rows and by
  /// branch-and-bound to tighten variable bounds. Indices must be valid.
  void set_row(int row, RowSense sense, double rhs);
  void set_bounds(int column, double lower, double upper);
  void set_objective_coeff(int column, double coeff);
  /// Sets one coefficient of an existing row: updates the entry in place,
  /// inserts it when absent, erases it when `coeff` is zero (rows never
  /// carry explicit zeros). Lets the lexmin driver retarget its per-load
  /// rows in place instead of rebuilding the whole problem.
  void set_row_coeff(int row, int column, double coeff);

  /// Evaluates one row's left-hand side at a point.
  double row_value(int row, const std::vector<double>& x) const;

  /// Checks that a point satisfies all bounds and rows within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Evaluates the objective at a point.
  double objective_value(const std::vector<double>& x) const;

 private:
  struct Column {
    double objective = 0.0;
    double lower = 0.0;
    double upper = kInfinity;
    std::string name;
  };
  struct Row {
    RowSense sense = RowSense::kLessEqual;
    double rhs = 0.0;
    std::vector<RowEntry> entries;
    std::string name;
  };

  void set_col_coeff(int column, int row, double coeff);

  std::vector<Column> columns_;
  std::vector<Row> rows_;
  // CSC mirror of rows_[*].entries, one row-sorted entry vector per column.
  std::vector<std::vector<ColEntry>> col_entries_;
};

}  // namespace flowtime::lp
