#include "lp/lexmin.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace flowtime::lp {

namespace {

// Builds the round problem: base columns/rows with zeroed objective, plus the
// scalar u (minimized), plus one row per load:
//   free k:   load_k - n_k * u <= 0
//   fixed k:  load_k           <= level_k * n_k
// Returns the u column index via out parameter; load-row index i maps to
// problem row (base rows + i).
LpProblem build_round(const LpProblem& base, const std::vector<LoadRow>& loads,
                      const std::vector<double>& fixed_level,
                      const std::vector<bool>& fixed, int* u_column) {
  LpProblem p = base;
  for (int j = 0; j < p.num_columns(); ++j) p.set_objective_coeff(j, 0.0);
  *u_column = p.add_column(1.0, 0.0, kInfinity, "u");
  for (std::size_t k = 0; k < loads.size(); ++k) {
    std::vector<RowEntry> entries = loads[k].entries;
    if (fixed[k]) {
      p.add_row(RowSense::kLessEqual,
                fixed_level[k] * loads[k].normalizer, std::move(entries),
                loads[k].name);
    } else {
      entries.push_back(RowEntry{*u_column, -loads[k].normalizer});
      p.add_row(RowSense::kLessEqual, 0.0, std::move(entries),
                loads[k].name);
    }
  }
  return p;
}

}  // namespace

LexMinMaxSolver::LexMinMaxSolver(LexMinMaxOptions options)
    : options_(options) {}

LexMinMaxResult LexMinMaxSolver::solve(
    const LpProblem& base, const std::vector<LoadRow>& loads) const {
  if (!obs::enabled()) return solve_impl(base, loads);

  double wall_s = 0.0;
  LexMinMaxResult result;
  {
    obs::ScopedTimer timer(
        &wall_s, &obs::registry().histogram("lp.lexmin.solve_seconds"));
    result = solve_impl(base, loads);
  }
  obs::Registry& reg = obs::registry();
  reg.counter("lp.lexmin.solves").add();
  reg.counter("lp.lexmin.rounds").add(result.rounds);
  reg.counter("lp.lexmin.pivots").add(result.pivots);
  if (!result.optimal()) reg.counter("lp.lexmin.failures").add();
  obs::emit(obs::TraceEvent("lexmin_solve")
                .field("rows", base.num_rows())
                .field("cols", base.num_columns())
                .field("loads", loads.size())
                .field("status", to_string(result.status))
                .field("rounds", result.rounds)
                .field("pivots", result.pivots)
                .field("levels", result.levels.size())
                .field("max_level", result.max_level())
                .field("wall_s", wall_s));
  return result;
}

LexMinMaxResult LexMinMaxSolver::solve_impl(
    const LpProblem& base, const std::vector<LoadRow>& loads) const {
  LexMinMaxResult result;
  const std::size_t k_total = loads.size();
  std::vector<bool> fixed(k_total, false);
  std::vector<double> fixed_level(k_total, 0.0);
  SimplexSolver solver(options_.lp_options);

  if (k_total == 0) {
    // Nothing to balance: any feasible point of the base problem will do.
    LpProblem p = base;
    for (int j = 0; j < p.num_columns(); ++j) p.set_objective_coeff(j, 0.0);
    Solution s = solver.solve(p);
    result.status = s.status;
    result.x = std::move(s.x);
    result.pivots = s.iterations;
    return result;
  }

  std::size_t num_fixed = 0;
  while (num_fixed < k_total && result.rounds < options_.max_rounds) {
    ++result.rounds;
    int u_column = -1;
    LpProblem p =
        build_round(base, loads, fixed_level, fixed, &u_column);
    const Solution s = solver.solve(p);
    result.pivots += s.iterations;
    if (!s.optimal()) {
      result.status = s.status;
      return result;
    }
    const double level = s.x[static_cast<std::size_t>(u_column)];
    result.x.assign(s.x.begin(), s.x.begin() + base.num_columns());

    // Candidates: free rows binding at this level.
    std::vector<std::size_t> candidates;
    for (std::size_t k = 0; k < k_total; ++k) {
      if (fixed[k]) continue;
      double load = 0.0;
      for (const RowEntry& e : loads[k].entries) {
        load += e.coeff * s.x[static_cast<std::size_t>(e.column)];
      }
      const double normalized = load / loads[k].normalizer;
      if (normalized >= level - options_.level_tol) candidates.push_back(k);
    }
    if (level <= options_.level_tol) {
      // Everything remaining can sit at (effectively) zero; finish.
      for (std::size_t k = 0; k < k_total; ++k) {
        if (!fixed[k]) {
          fixed[k] = true;
          fixed_level[k] = std::max(level, 0.0);
          ++num_fixed;
        }
      }
      result.levels.push_back(std::max(level, 0.0));
      break;
    }

    std::vector<std::size_t> to_fix;
    if (options_.exact_fixing) {
      // Probe: can candidate k drop strictly below `level` while all free
      // rows stay <= level? If not, it is genuinely stuck at this level.
      for (std::size_t k : candidates) {
        int probe_u = -1;
        LpProblem probe =
            build_round(base, loads, fixed_level, fixed, &probe_u);
        probe.set_bounds(probe_u, 0.0, level + options_.level_tol);
        probe.set_objective_coeff(probe_u, 0.0);
        // Objective: minimize load_k.
        for (const RowEntry& e : loads[k].entries) {
          probe.set_objective_coeff(
              e.column, probe.objective_coeff(e.column) + e.coeff);
        }
        const Solution ps = solver.solve(probe);
        result.pivots += ps.iterations;
        if (!ps.optimal() ||
            ps.objective / loads[k].normalizer >=
                level - options_.level_tol) {
          to_fix.push_back(k);
        }
      }
    } else {
      const int base_rows = base.num_rows();
      for (std::size_t k : candidates) {
        const double dual =
            s.duals[static_cast<std::size_t>(base_rows) + k];
        if (std::abs(dual) > options_.dual_tol) to_fix.push_back(k);
      }
    }
    if (to_fix.empty()) to_fix = candidates;  // stall guard
    if (to_fix.empty()) break;                // numerically nothing binds

    for (std::size_t k : to_fix) {
      fixed[k] = true;
      fixed_level[k] = level;
      ++num_fixed;
    }
    result.levels.push_back(level);
  }

  if (num_fixed < k_total) {
    // Round budget exhausted: freeze the remainder at the last level so the
    // reported solution is still feasible for every recorded level.
    FT_LOG(kInfo) << "lexmin: round budget exhausted with "
                  << (k_total - num_fixed) << " rows unfixed";
  }

  result.status = SolveStatus::kOptimal;
  result.load.resize(k_total);
  for (std::size_t k = 0; k < k_total; ++k) {
    double load = 0.0;
    for (const RowEntry& e : loads[k].entries) {
      load += e.coeff * result.x[static_cast<std::size_t>(e.column)];
    }
    result.load[k] = load / loads[k].normalizer;
  }
  return result;
}

}  // namespace flowtime::lp
