#include "lp/lexmin.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "lp/solve_profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace flowtime::lp {

LexMinMaxSolver::LexMinMaxSolver(LexMinMaxOptions options)
    : options_(options) {}

LexMinMaxResult LexMinMaxSolver::solve(
    const LpProblem& base, const std::vector<LoadRow>& loads,
    const Basis* warm) const {
  if (!obs::enabled()) return solve_impl(base, loads, warm);

  double wall_s = 0.0;
  LexMinMaxResult result;
  {
    obs::ScopedTimer timer(
        &wall_s, &obs::registry().histogram("lp.lexmin.solve_seconds"));
    result = solve_impl(base, loads, warm);
  }
  obs::Registry& reg = obs::registry();
  reg.counter("lp.lexmin.solves").add();
  reg.counter("lp.lexmin.rounds").add(result.rounds);
  reg.counter("lp.lexmin.pivots").add(result.pivots);
  if (!result.optimal()) reg.counter("lp.lexmin.failures").add();
  if (result.truncated) reg.counter("lp.lexmin.truncations").add();
  obs::emit(obs::TraceEvent("lexmin_solve")
                .field("rows", base.num_rows())
                .field("cols", base.num_columns())
                .field("loads", loads.size())
                .field("status", to_string(result.status))
                .field("rounds", result.rounds)
                .field("pivots", result.pivots)
                .field("levels", result.levels.size())
                .field("max_level", result.max_level())
                .field("truncated", result.truncated)
                .field("budget_exhausted", result.budget_exhausted)
                .field("probe_failures", result.probe_failures)
                .field("wall_s", wall_s));
  return result;
}

LexMinMaxResult LexMinMaxSolver::solve_impl(
    const LpProblem& base, const std::vector<LoadRow>& loads,
    const Basis* warm) const {
  LexMinMaxResult result;
  const std::size_t k_total = loads.size();
  std::vector<bool> fixed(k_total, false);
  SimplexSolver solver(options_.lp_options);

  if (!options_.warm_start) warm = nullptr;

  if (k_total == 0) {
    // Nothing to balance: any feasible point of the base problem will do.
    LpProblem p = base;
    for (int j = 0; j < p.num_columns(); ++j) p.set_objective_coeff(j, 0.0);
    Solution s = solver.solve(p, warm);
    result.status = s.status;
    result.x = std::move(s.x);
    result.pivots = s.iterations;
    result.final_basis = std::move(s.basis);
    if (options_.lp_options.budget != nullptr) {
      result.budget_exhausted = options_.lp_options.budget->exhausted();
    }
    return result;
  }

  // One working problem for every round and probe: base columns/rows with a
  // zeroed objective, the scalar u (minimized), and one row per load:
  //   free k:   load_k - n_k * u <= 0
  //   fixed k:  load_k           <= level_k * n_k   (u coefficient removed)
  // Rounds and probes mutate coefficients/bounds/rhs in place — the shape
  // never changes, so every solve can warm-start from the previous basis.
  LpProblem p = base;
  for (int j = 0; j < p.num_columns(); ++j) p.set_objective_coeff(j, 0.0);
  const int u_column = p.add_column(1.0, 0.0, kInfinity, "u");
  const int first_load_row = p.num_rows();
  for (std::size_t k = 0; k < k_total; ++k) {
    std::vector<RowEntry> entries = loads[k].entries;
    entries.push_back(RowEntry{u_column, -loads[k].normalizer});
    p.add_row(RowSense::kLessEqual, 0.0, std::move(entries), loads[k].name);
  }

  Basis basis;  // rolling warm-start hint, threaded round to round
  if (warm != nullptr && !warm->empty()) basis = *warm;

  std::size_t num_fixed = 0;
  while (num_fixed < k_total && result.rounds < options_.max_rounds) {
    ++result.rounds;
    // Per-round breakdown for the solver-phase profile: each round is one
    // LP solve plus (under exact fixing) a probe per candidate, and the
    // rounds-vs-pivots shape is what distinguishes "many cheap levels"
    // from "one giant degenerate solve" in trace_report.
    if (SolveProfile* profile = current_profile()) ++profile->lexmin_rounds;
    const bool traced = obs::enabled();
    const double round_wall0 = traced ? obs::wall_now_s() : 0.0;
    const std::int64_t round_pivots0 = result.pivots;
    const std::size_t round_fixed0 = num_fixed;
    double round_level = 0.0;
    const auto emit_round = [&] {
      if (!traced) return;
      obs::emit(obs::TraceEvent("lexmin_round")
                    .field("round", result.rounds)
                    .field("level", round_level)
                    .field("pivots", result.pivots - round_pivots0)
                    .field("fixed",
                           static_cast<std::int64_t>(num_fixed - round_fixed0))
                    .field("total_fixed", static_cast<std::int64_t>(num_fixed))
                    .field("wall_s", obs::wall_now_s() - round_wall0));
    };
    const Solution s = solver.solve(
        p, options_.warm_start && !basis.empty() ? &basis : nullptr);
    result.pivots += s.iterations;
    if (!s.optimal()) {
      SolveBudget* budget = options_.lp_options.budget;
      if (budget != nullptr && budget->exhausted()) {
        result.budget_exhausted = true;
        // A phase-2 cutoff still returns a feasible (unproven) point; a
        // phase-1 cutoff returns none, but an earlier round may have. In
        // either case the best feasible point seen becomes a truncated
        // result instead of a failure; with no feasible point at all the
        // budget's status propagates and the caller's ladder escalates.
        if (!s.x.empty()) {
          result.x.assign(s.x.begin(), s.x.begin() + base.num_columns());
        }
        if (!result.x.empty()) {
          emit_round();
          break;
        }
      }
      result.status = s.status;
      emit_round();
      return result;
    }
    if (options_.warm_start) basis = s.basis;
    const double level = s.x[static_cast<std::size_t>(u_column)];
    round_level = level;
    result.x.assign(s.x.begin(), s.x.begin() + base.num_columns());

    // Candidates: free rows binding at this level.
    std::vector<std::size_t> candidates;
    for (std::size_t k = 0; k < k_total; ++k) {
      if (fixed[k]) continue;
      double load = 0.0;
      for (const RowEntry& e : loads[k].entries) {
        load += e.coeff * s.x[static_cast<std::size_t>(e.column)];
      }
      const double normalized = load / loads[k].normalizer;
      if (normalized >= level - options_.level_tol) candidates.push_back(k);
    }
    if (level <= options_.level_tol) {
      // Everything remaining can sit at (effectively) zero; finish.
      for (std::size_t k = 0; k < k_total; ++k) {
        if (!fixed[k]) {
          fixed[k] = true;
          ++num_fixed;
        }
      }
      result.levels.push_back(std::max(level, 0.0));
      emit_round();
      break;
    }

    std::vector<std::size_t> to_fix;
    if (options_.exact_fixing) {
      // Probe: can candidate k drop strictly below `level` while all free
      // rows stay <= level? If not, it is genuinely stuck at this level.
      // Each probe reuses the working problem (u capped at the level, the
      // candidate's load as the objective) and warm-starts from the
      // round's basis; the mutations are undone before the next probe.
      for (std::size_t k : candidates) {
        p.set_bounds(u_column, 0.0, level + options_.level_tol);
        p.set_objective_coeff(u_column, 0.0);
        for (const RowEntry& e : loads[k].entries) {
          p.set_objective_coeff(e.column,
                                p.objective_coeff(e.column) + e.coeff);
        }
        const Solution ps = solver.solve(
            p, options_.warm_start && !basis.empty() ? &basis : nullptr);
        result.pivots += ps.iterations;
        // Undo: every structural objective coefficient is zero outside a
        // probe, so resetting (not subtracting) is exact even when a load
        // touches the same column twice.
        for (const RowEntry& e : loads[k].entries) {
          p.set_objective_coeff(e.column, 0.0);
        }
        p.set_objective_coeff(u_column, 1.0);
        p.set_bounds(u_column, 0.0, kInfinity);
        if (ps.optimal()) {
          // A proved bound: the candidate cannot leave this level.
          if (ps.objective / loads[k].normalizer >=
              level - options_.level_tol) {
            to_fix.push_back(k);
          }
        } else {
          // Solver failure (iteration limit, numerics) proves nothing
          // about the bound; fall back to the round's dual test for this
          // candidate instead of freezing it on a failed solve.
          ++result.probe_failures;
          const double dual = s.duals[static_cast<std::size_t>(
              first_load_row + static_cast<int>(k))];
          if (std::abs(dual) > options_.dual_tol) to_fix.push_back(k);
        }
      }
    } else {
      for (std::size_t k : candidates) {
        const double dual = s.duals[static_cast<std::size_t>(
            first_load_row + static_cast<int>(k))];
        if (std::abs(dual) > options_.dual_tol) to_fix.push_back(k);
      }
    }
    if (to_fix.empty()) to_fix = candidates;  // stall guard
    if (to_fix.empty()) {                     // numerically nothing binds
      emit_round();
      break;
    }

    for (std::size_t k : to_fix) {
      fixed[k] = true;
      ++num_fixed;
      // Freeze the row in place: detach it from u and cap it at the level.
      const int row = first_load_row + static_cast<int>(k);
      p.set_row_coeff(row, u_column, 0.0);
      p.set_row(row, RowSense::kLessEqual, level * loads[k].normalizer);
    }
    result.levels.push_back(level);
    emit_round();
  }

  if (num_fixed < k_total) {
    // Round budget exhausted: the remainder keeps its <= u constraint from
    // the last solve, so the reported solution is feasible for every
    // recorded level, but the profile tail is unrefined.
    result.truncated = true;
    FT_LOG(kInfo) << "lexmin: round budget exhausted with "
                  << (k_total - num_fixed) << " rows unfixed";
  }

  result.status = SolveStatus::kOptimal;
  result.final_basis = std::move(basis);
  result.load.resize(k_total);
  for (std::size_t k = 0; k < k_total; ++k) {
    double load = 0.0;
    for (const RowEntry& e : loads[k].entries) {
      load += e.coeff * result.x[static_cast<std::size_t>(e.column)];
    }
    result.load[k] = load / loads[k].normalizer;
  }
  return result;
}

}  // namespace flowtime::lp
