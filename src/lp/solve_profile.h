// Phase-level profiling of the simplex/lexmin hot path (DESIGN.md §8).
//
// The simplex engine spends its time in four places — pricing (duals +
// reduced-cost scan), the ratio test (ftran + leaving-row search), the
// rank-1 basis-inverse update, and periodic refactorization — and the
// question ROADMAP item 1 (sparse LP core) hinges on is *which one*. A
// SolveProfile is a plain accumulator for those phase timers plus the
// counters that explain them (degenerate pivots, bound flips, basis
// patches, lexmin rounds).
//
// Contention model: the profile is aggregated THREAD-LOCALLY and merged
// into the process-wide registry exactly once, when the owning
// ScopedSolveProfile closes. The hot loop touches only a plain struct
// through a thread_local pointer — no atomics, no mutexes, no registry
// lookups per pivot — so a concurrent solver pool never serializes on
// instrumentation. When no scope is installed (current_profile() ==
// nullptr) the engine skips every clock read: phase profiling costs
// nothing unless somebody asked for it.
//
// Usage:
//   {
//     lp::ScopedSolveProfile prof("replan", slot);   // installs TLS pointer
//     ... run simplex / lexmin on this thread ...
//   }  // merges into obs::registry(), emits a "solve_profile" trace event
//
// Scopes do not nest: an inner scope on the same thread is inert (the outer
// one keeps collecting), which lets solve_replan own the profile while the
// lexmin solver underneath stays oblivious.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace flowtime::lp {

/// Phase timers (seconds) and counters for one profiled solve scope.
/// Everything is cumulative over every simplex/lexmin call the scope saw.
struct SolveProfile {
  // --- simplex phase timers ------------------------------------------------
  double pricing_s = 0.0;       ///< compute_duals + reduced-cost scan
  double ratio_test_s = 0.0;    ///< ftran + leaving-row search
  double basis_update_s = 0.0;  ///< rank-1 inverse update + bookkeeping
  double refactor_s = 0.0;      ///< dense refactorizations (all call sites)

  // --- simplex counters ----------------------------------------------------
  std::int64_t solves = 0;             ///< SimplexSolver::solve calls seen
  std::int64_t pivots = 0;             ///< iterations across all solves
  std::int64_t degenerate_pivots = 0;  ///< ratio test hit t ~ 0
  std::int64_t bound_flips = 0;        ///< pivotless entering-variable flips
  std::int64_t refactorizations = 0;   ///< refactorize() calls
  std::int64_t basis_patches = 0;      ///< patch_singular_basis() repairs

  // --- lexmin --------------------------------------------------------------
  std::int64_t lexmin_rounds = 0;  ///< outer fix-and-continue rounds

  /// Seconds attributed to a named phase; total across the four timers.
  double phase_total_s() const {
    return pricing_s + ratio_test_s + basis_update_s + refactor_s;
  }

  void add(const SolveProfile& other);
};

/// The profile the current thread is accumulating into, or nullptr when no
/// scope is active. The simplex engine caches this once per solve.
SolveProfile* current_profile();

/// RAII profiling scope. Installs a fresh SolveProfile as the calling
/// thread's current_profile(); on destruction (obs enabled) merges the
/// totals into obs::registry() — counters `lp.simplex.degenerate_pivots`,
/// `.bound_flips`, `.refactorizations`, `.basis_patches`, histograms
/// `lp.profile.{pricing,ratio_test,basis_update,refactor}_seconds` — and
/// emits one flat `solve_profile` trace event tagged with the constructor's
/// context/slot. A scope constructed while another is active on the same
/// thread is inert (the outer scope keeps collecting).
class ScopedSolveProfile {
 public:
  explicit ScopedSolveProfile(std::string_view context, int slot = -1);
  ~ScopedSolveProfile();

  ScopedSolveProfile(const ScopedSolveProfile&) = delete;
  ScopedSolveProfile& operator=(const ScopedSolveProfile&) = delete;

  /// The totals collected so far (this scope only; empty when inert).
  const SolveProfile& profile() const { return profile_; }
  /// False when an outer scope was already active and this one is inert.
  bool active() const { return active_; }

 private:
  SolveProfile profile_;
  std::string context_;
  int slot_;
  bool active_;
};

}  // namespace flowtime::lp
