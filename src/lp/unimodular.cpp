#include "lp/unimodular.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

namespace flowtime::lp {

namespace {

// Determinant of a small integer matrix by fraction-free (Bareiss)
// elimination. Exact for the sizes the TU check enumerates.
std::int64_t determinant(std::vector<std::int64_t> a, int n) {
  if (n == 0) return 1;
  std::int64_t prev = 1;
  std::int64_t sign = 1;
  auto at = [&](int r, int c) -> std::int64_t& {
    return a[static_cast<std::size_t>(r) * n + c];
  };
  for (int k = 0; k < n - 1; ++k) {
    if (at(k, k) == 0) {
      int swap_row = -1;
      for (int r = k + 1; r < n; ++r) {
        if (at(r, k) != 0) {
          swap_row = r;
          break;
        }
      }
      if (swap_row < 0) return 0;
      for (int c = 0; c < n; ++c) std::swap(at(k, c), at(swap_row, c));
      sign = -sign;
    }
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j < n; ++j) {
        at(i, j) = (at(i, j) * at(k, k) - at(i, k) * at(k, j)) / prev;
      }
      at(i, k) = 0;
    }
    prev = at(k, k);
  }
  return sign * at(n - 1, n - 1);
}

// Enumerates k-combinations of [0, n) into `combo`, invoking `visit`;
// returns false early if visit returns false.
bool for_each_combination(int n, int k,
                          const std::function<bool(const std::vector<int>&)>& visit) {
  std::vector<int> combo(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) combo[static_cast<std::size_t>(i)] = i;
  while (true) {
    if (!visit(combo)) return false;
    int i = k - 1;
    while (i >= 0 && combo[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) return true;
    ++combo[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      combo[static_cast<std::size_t>(j)] =
          combo[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

std::optional<IntMatrix> coefficient_matrix(const LpProblem& problem) {
  IntMatrix m;
  m.rows = problem.num_rows();
  m.cols = problem.num_columns();
  m.data.assign(static_cast<std::size_t>(m.rows) * m.cols, 0);
  for (int i = 0; i < m.rows; ++i) {
    for (const RowEntry& e : problem.row_entries(i)) {
      const double rounded = std::round(e.coeff);
      if (std::abs(e.coeff - rounded) > 1e-9) return std::nullopt;
      m.at(i, e.column) = static_cast<int>(rounded);
    }
  }
  return m;
}

bool is_totally_unimodular(const IntMatrix& m, int max_order) {
  const int limit = std::min({max_order, m.rows, m.cols});
  for (int k = 1; k <= limit; ++k) {
    std::vector<std::int64_t> sub(static_cast<std::size_t>(k) * k);
    const bool ok = for_each_combination(
        m.rows, k, [&](const std::vector<int>& row_set) {
          return for_each_combination(
              m.cols, k, [&](const std::vector<int>& col_set) {
                for (int r = 0; r < k; ++r) {
                  for (int c = 0; c < k; ++c) {
                    sub[static_cast<std::size_t>(r) * k + c] =
                        m.at(row_set[static_cast<std::size_t>(r)],
                             col_set[static_cast<std::size_t>(c)]);
                  }
                }
                const std::int64_t det = determinant(sub, k);
                return det >= -1 && det <= 1;
              });
        });
    if (!ok) return false;
  }
  return true;
}

std::optional<std::vector<int>> ghouila_houri_violation(const IntMatrix& m) {
  if (m.rows > 20) return std::nullopt;  // practical guard; treat as pass
  const std::uint32_t subsets = 1u << m.rows;
  std::vector<int> rows_in;
  std::vector<int> sums(static_cast<std::size_t>(m.cols));
  for (std::uint32_t mask = 1; mask < subsets; ++mask) {
    rows_in.clear();
    for (int r = 0; r < m.rows; ++r) {
      if (mask & (1u << r)) rows_in.push_back(r);
    }
    // DFS over sign assignments with column-sum pruning: find signs s_i so
    // every |sum_j| <= 1.
    std::fill(sums.begin(), sums.end(), 0);
    bool found = false;
    std::function<void(std::size_t)> assign = [&](std::size_t index) {
      if (found) return;
      if (index == rows_in.size()) {
        found = true;
        return;
      }
      const int row = rows_in[index];
      // Bound: remaining rows can change each column sum by at most 1 per
      // row, so prune only on the hard |sum| <= 1 + remaining bound.
      const int remaining = static_cast<int>(rows_in.size() - index - 1);
      for (const int sign : {+1, -1}) {
        bool viable = true;
        for (int c = 0; c < m.cols; ++c) {
          sums[static_cast<std::size_t>(c)] += sign * m.at(row, c);
          if (std::abs(sums[static_cast<std::size_t>(c)]) > 1 + remaining) {
            viable = false;
          }
        }
        if (viable) assign(index + 1);
        for (int c = 0; c < m.cols; ++c) {
          sums[static_cast<std::size_t>(c)] -= sign * m.at(row, c);
        }
        if (found) return;
        if (index == 0) break;  // symmetry: fix the first row's sign
      }
    };
    assign(0);
    if (!found) return rows_in;
  }
  return std::nullopt;
}

bool has_consecutive_ones_columns(const IntMatrix& m) {
  for (int c = 0; c < m.cols; ++c) {
    int state = 0;  // 0: before run, 1: in run, 2: after run
    for (int r = 0; r < m.rows; ++r) {
      const int v = m.at(r, c);
      if (v != 0 && v != 1) return false;
      if (v == 1) {
        if (state == 2) return false;
        state = 1;
      } else if (state == 1) {
        state = 2;
      }
    }
  }
  return true;
}

bool is_network_matrix(const IntMatrix& m) {
  for (int c = 0; c < m.cols; ++c) {
    int plus = 0;
    int minus = 0;
    for (int r = 0; r < m.rows; ++r) {
      const int v = m.at(r, c);
      if (v == 1) {
        ++plus;
      } else if (v == -1) {
        ++minus;
      } else if (v != 0) {
        return false;
      }
    }
    if (plus > 1 || minus > 1) return false;
  }
  return true;
}

bool is_bipartite_incidence_like(const IntMatrix& m) {
  // Union-find with parity: rows connected by a column carrying two equal
  // signs must take different classes; opposite signs the same class.
  std::vector<int> parent(static_cast<std::size_t>(m.rows));
  std::vector<int> parity(static_cast<std::size_t>(m.rows), 0);
  for (int r = 0; r < m.rows; ++r) parent[static_cast<std::size_t>(r)] = r;
  std::function<std::pair<int, int>(int)> find = [&](int r) {
    if (parent[static_cast<std::size_t>(r)] == r) return std::make_pair(r, 0);
    const auto [root, p] = find(parent[static_cast<std::size_t>(r)]);
    parent[static_cast<std::size_t>(r)] = root;
    parity[static_cast<std::size_t>(r)] =
        (parity[static_cast<std::size_t>(r)] + p) % 2;
    return std::make_pair(root, static_cast<int>(parity[static_cast<std::size_t>(r)]));
  };

  for (int c = 0; c < m.cols; ++c) {
    int first = -1;
    int second = -1;
    for (int r = 0; r < m.rows; ++r) {
      const int v = m.at(r, c);
      if (v == 0) continue;
      if (v != 1 && v != -1) return false;
      if (first < 0) {
        first = r;
      } else if (second < 0) {
        second = r;
      } else {
        return false;  // more than two nonzeros
      }
    }
    if (second < 0) continue;  // single-entry columns are always fine
    const int required_parity =
        m.at(first, c) == m.at(second, c) ? 1 : 0;
    const auto [root_a, parity_a] = find(first);
    const auto [root_b, parity_b] = find(second);
    if (root_a == root_b) {
      if ((parity_a ^ parity_b) != required_parity) return false;
    } else {
      parent[static_cast<std::size_t>(root_a)] = root_b;
      parity[static_cast<std::size_t>(root_a)] =
          (parity_a ^ parity_b ^ required_parity);
    }
  }
  return true;
}

bool flow_representable(const LpProblem& base,
                        const std::vector<LoadRow>& loads) {
  const int n = base.num_columns();
  if (n == 0) return false;
  std::vector<int> base_count(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < base.num_rows(); ++i) {
    if (base.row_sense(i) != RowSense::kEqual) return false;
    if (!(base.row_rhs(i) >= 0.0)) return false;
    for (const RowEntry& e : base.row_entries(i)) {
      if (e.coeff != 1.0) return false;
      if (++base_count[static_cast<std::size_t>(e.column)] > 1) return false;
    }
  }
  std::vector<int> load_count(static_cast<std::size_t>(n), 0);
  for (const LoadRow& load : loads) {
    if (!(load.normalizer > 0.0)) return false;
    for (const RowEntry& e : load.entries) {
      if (e.coeff != 1.0) return false;
      if (++load_count[static_cast<std::size_t>(e.column)] > 1) return false;
    }
  }
  for (int j = 0; j < n; ++j) {
    // Exactly one supply (job) row and one consumption (slot) row per
    // column, variable in [0, finite width]: the job->slot edge of a
    // transportation network, nothing else.
    if (base_count[static_cast<std::size_t>(j)] != 1) return false;
    if (load_count[static_cast<std::size_t>(j)] != 1) return false;
    if (base.lower_bound(j) != 0.0) return false;
    const double ub = base.upper_bound(j);
    if (!std::isfinite(ub) || ub < 0.0) return false;
  }
  return true;
}

}  // namespace flowtime::lp
