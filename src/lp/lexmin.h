// Lexicographic min-max solver (paper §V, objective (1)).
//
// FlowTime's objective is
//
//     lexmin_x  max_{t,r}  z_t^r / C_t^r
//
// — the lexicographically minimal vector of normalized per-slot loads,
// sorted in decreasing order. The paper proves (Lemma 1) that this equals
// minimizing the scalar  Σ k^{u_i}  with k = |T||R|; that transform is a
// proof device (k^{u} overflows doubles immediately), so like production
// fair-allocation solvers we compute the same optimum with the standard
// iterative scheme:
//
//   round 1: minimize u s.t. load_k(x) <= u * n_k for all k  -> level u1
//   identify the rows that must sit at u1 in every optimum, freeze them at
//   level u1, constrain all others by u1, and repeat on the rest.
//
// Row fixing uses the dual test (a binding row with a strictly positive dual
// must stay binding) with two fallbacks: if no candidate has a positive dual
// the round would stall, so all binding rows are fixed; and `exact_fixing`
// replaces the dual test with one probing LP per candidate.
//
// Exactness caveat: the FIRST coordinate (the overall min-max) is exact in
// every mode. Deeper coordinates are exact only when the binding set at
// each level is unique; when every binding row is *individually* reducible
// (the argmax shifts between optima), both fixing rules fall back to fixing
// all candidates, which can over-constrain later levels. True lexicographic
// refinement in that regime needs the counting LP of Ogryczak & Sliwinski;
// the scheduler does not need it (profile flatness beyond the first few
// levels has no measurable effect — see bench/ablation_decomposition part
// 2), so we document the limit instead of paying for it.
#pragma once

#include <string>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace flowtime::lp {

/// One coordinate of the lexmin-max vector: a linear expression over the
/// base problem's columns plus its normalizer (`C_t^r` in the paper).
struct LoadRow {
  std::vector<RowEntry> entries;
  double normalizer = 1.0;
  std::string name;
};

struct LexMinMaxOptions {
  int max_rounds = 64;        // safety valve; each round fixes >= 1 row
  double level_tol = 1e-6;    // load within this of u* counts as binding
  double dual_tol = 1e-7;     // dual magnitude that forces fixing
  bool exact_fixing = false;  // probe each candidate with its own LP
  /// Thread each round's (and probe's) final basis into the next solve and
  /// accept a caller-provided basis for round 1. On by default — warm
  /// starting never changes the result, only the pivot count; the switch
  /// exists for cold-baseline benchmarking and bisection.
  bool warm_start = true;
  SimplexOptions lp_options;
};

struct LexMinMaxResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  std::vector<double> x;       // solution over the base problem's columns
  std::vector<double> load;    // final normalized load of every LoadRow
  std::vector<double> levels;  // distinct levels fixed, in decreasing order
  int rounds = 0;
  std::int64_t pivots = 0;  // total simplex pivots across all rounds
  /// True when `max_rounds` ran out with rows still unfixed: the first
  /// `levels.size()` lexicographic coordinates are exact (subject to the
  /// header caveat) but the tail of the profile was never refined. The
  /// solution is still feasible for every recorded level; callers that
  /// care about plan quality should treat a truncated result as a
  /// warning, not as the lexicographic optimum.
  bool truncated = false;
  /// Exact-fixing probes that did not solve to optimality and fell back to
  /// the dual test for that candidate (solver failure, not a bound proof).
  int probe_failures = 0;
  /// True when the shared SolveBudget (lp_options.budget) ran out during
  /// this solve. When a feasible point from an earlier (or cut-short) round
  /// was available the result reports kOptimal with `truncated` set — the
  /// placement is usable but not the lexicographic optimum; otherwise the
  /// budget's status (kTimeout / kIterationLimit) is propagated.
  bool budget_exhausted = false;
  /// Final simplex basis of the last round, for warm-starting the next
  /// lexmin solve of a same-shaped instance (see LexMinMaxSolver::solve).
  Basis final_basis;

  bool optimal() const { return status == SolveStatus::kOptimal; }
  /// The overall min-max value (first lexicographic coordinate).
  double max_level() const { return levels.empty() ? 0.0 : levels.front(); }
};

/// Solves lexmin-max over `loads` subject to `base`'s rows and bounds.
/// The base problem's own objective coefficients are ignored.
///
/// Incremental hot path: one working problem (base + u column + one row per
/// load) is built once and mutated in place across rounds and exact-fixing
/// probes; each solve warm-starts from the previous basis, so successive
/// rounds cost a handful of repair pivots instead of a full two-phase
/// solve. `warm` optionally seeds round 1 from a previous lexmin solve of a
/// same-shaped instance (e.g. the last re-plan); a stale or mismatched hint
/// falls back to a cold first round.
class LexMinMaxSolver {
 public:
  explicit LexMinMaxSolver(LexMinMaxOptions options = {});

  LexMinMaxResult solve(const LpProblem& base,
                        const std::vector<LoadRow>& loads,
                        const Basis* warm = nullptr) const;

 private:
  LexMinMaxResult solve_impl(const LpProblem& base,
                             const std::vector<LoadRow>& loads,
                             const Basis* warm) const;

  LexMinMaxOptions options_;
};

}  // namespace flowtime::lp
