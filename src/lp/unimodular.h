// Total unimodularity checking (paper Lemma 2).
//
// The paper's integrality argument rests on the constraint matrix of the
// scheduling LP being totally unimodular (every square submatrix has
// determinant in {-1, 0, 1}); Meyer's theorem then makes the LP relaxation
// exact. This module lets the tests *verify* that claim on the matrices the
// formulation actually builds, rather than trusting it:
//
//  * is_totally_unimodular(): exact check by enumerating square submatrices
//    (exponential; fine for the small matrices tests use).
//  * ghouila_houri_certificate(): the Ghouila-Houri characterization — a
//    matrix is TU iff every subset of rows can be 2-coloured so the signed
//    column sums lie in {-1, 0, 1}. Also exponential but in rows only, so
//    it handles wider matrices; returns a violating row subset when not TU.
//  * interval_matrix / network-structure helpers: the polynomial sufficient
//    conditions that the scheduling matrices satisfy by construction.
#pragma once

#include <optional>
#include <vector>

#include "lp/lexmin.h"
#include "lp/model.h"

namespace flowtime::lp {

/// Dense integer matrix, row-major.
struct IntMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> data;

  int at(int r, int c) const {
    return data[static_cast<std::size_t>(r) * cols + c];
  }
  int& at(int r, int c) {
    return data[static_cast<std::size_t>(r) * cols + c];
  }
};

/// Extracts the coefficient matrix of a problem's rows (columns in order).
/// Requires every coefficient to be integral; returns nullopt otherwise.
std::optional<IntMatrix> coefficient_matrix(const LpProblem& problem);

/// Exact TU check by submatrix enumeration. Use only for small matrices
/// (determinants of all square submatrices up to min(rows, cols)).
bool is_totally_unimodular(const IntMatrix& m, int max_order = 6);

/// Ghouila-Houri: m is TU iff every row subset R admits a partition
/// R = R1 ∪ R2 with column sums (sum_{R1} - sum_{R2}) in {-1,0,1}.
/// Returns nullopt when TU, otherwise a violating subset of row indices.
/// Exponential in rows; practical to ~20 rows.
std::optional<std::vector<int>> ghouila_houri_violation(const IntMatrix& m);

/// True when the matrix is a 0/1 interval matrix (consecutive ones in each
/// column) — a classic polynomial sufficient condition for TU.
bool has_consecutive_ones_columns(const IntMatrix& m);

/// True when every column has at most one +1 and at most one -1 and no
/// other nonzeros (network matrix) — another sufficient condition.
bool is_network_matrix(const IntMatrix& m);

/// True when every column has at most two nonzero entries, all in {-1,+1},
/// and the rows can be 2-coloured so that within each column, two entries
/// of equal sign land in different classes and two entries of opposite
/// signs land in the same class (the bipartite-incidence condition; the
/// scheduling matrix — one demand row + one load row per column — passes
/// with the trivial colouring {demand rows | load rows}).
bool is_bipartite_incidence_like(const IntMatrix& m);

/// Structural gate for the max-flow fast path: true when the lexmin system
/// (base rows + load rows) is exactly the bipartite transportation
/// structure a parametric max flow solves — every base row an equality with
/// nonnegative rhs and all-(+1) coefficients, every column in [0, finite
/// ub] appearing in exactly one base row and exactly one load row with
/// coefficient +1, and every load normalizer positive. Such a system is TU
/// (each column is a bipartite incidence column), and its first lexmin
/// level equals the minimal uniform capacity scaling of the corresponding
/// flow network. O(nnz) — evaluated per replan round, unlike the
/// exponential certificates above, which exist for tests.
bool flow_representable(const LpProblem& base,
                        const std::vector<LoadRow>& loads);

}  // namespace flowtime::lp
