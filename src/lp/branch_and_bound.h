// Reference MILP solver (branch and bound over the simplex).
//
// FlowTime never needs this at runtime — the paper's Lemma 2 (total
// unimodularity) guarantees the LP relaxation is already integral. The tests
// use this solver as an independent oracle: on randomly generated scheduling
// instances the LP vertex optimum must match the true integer optimum, which
// is exactly the claim the paper proves. It also handles small ad-hoc MILPs
// in examples. Depth-first search, best-first among open nodes, branching on
// the most fractional variable.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace flowtime::lp {

struct BranchAndBoundOptions {
  double integrality_tol = 1e-6;
  std::int64_t max_nodes = 100000;
  SimplexOptions lp_options;
};

/// Minimizes `problem` with the listed columns restricted to integers.
/// Solution::iterations reports explored branch-and-bound nodes.
class BranchAndBound {
 public:
  explicit BranchAndBound(BranchAndBoundOptions options = {});

  /// `integer_columns` lists column indices that must take integer values;
  /// pass all columns for a pure ILP.
  Solution solve(const LpProblem& problem,
                 const std::vector<int>& integer_columns) const;

 private:
  BranchAndBoundOptions options_;
};

}  // namespace flowtime::lp
