// Two-phase bounded-variable primal simplex.
//
// Replaces the paper's CPLEX dependency. Design goals, in order:
//   1. Vertex solutions. FlowTime's integrality argument (paper Lemma 2,
//      Meyer 1977) holds only for extreme points; simplex delivers them,
//      interior-point methods would not.
//   2. Robustness on the scheduler's problem family: totally unimodular
//      constraint matrices with small integer data, up to a few hundred rows
//      and tens of thousands of columns.
//   3. Exploit sparsity: revised simplex over the model's CSC column view
//      with a sparse LU basis factorization plus product-form eta updates,
//      refactorized periodically (SimplexEngine::kSparseLu). Columns of the
//      scheduling LPs carry 2-3 nonzeros, so pricing, ftran and btran are
//      all O(nnz)-ish. A dense maintained-inverse engine
//      (SimplexEngine::kDenseInverse) is retained for differential checks.
//
// Implementation notes:
//   * Rows are converted to equalities with bounded slacks
//     (<=  : slack in [0, inf),  =  : slack fixed at 0,
//      >=  : slack in (-inf, 0]).
//   * Phase 1 uses artificial variables and minimizes their sum; phase 2
//     fixes artificials at zero and optimizes the true objective from the
//     phase-1 basis.
//   * Dantzig pricing over a rotating candidate section (partial pricing)
//     with automatic fallback to Bland's rule after a run of degenerate
//     pivots, which guarantees termination.
//   * Warm starts: a Solution carries the final Basis; a later solve of a
//     same-shaped problem may pass it back. The engine refactorizes the
//     hinted basis and, when data changes left it primal infeasible, runs a
//     repair phase that relaxes only the violated variables' bounds and
//     drives the violation out — far cheaper than the all-artificial
//     phase 1. Unusable hints (shape mismatch, singular basis, repair
//     failure) fall back to a cold solve, so warm starting never changes
//     the result, only the pivot count.
#pragma once

#include <cstdint>

#include "lp/model.h"
#include "lp/solve_budget.h"

namespace flowtime::lp {

/// Basis representation used by the revised simplex.
enum class SimplexEngine {
  /// Sparse LU factorization of the basis (left-looking, threshold
  /// pivoting) with product-form eta updates per pivot, refactorized every
  /// `refactor_interval` pivots. O(nnz)-ish per pivot; the default.
  kSparseLu,
  /// Dense maintained basis inverse with dense Gauss-Jordan
  /// refactorization. O(m^2) per pivot, O(m^3) per refactorization. Kept as
  /// the reference engine for differential testing and as a fallback while
  /// the sparse path matures.
  kDenseInverse,
};

/// Solver tuning knobs. Defaults are appropriate for the scheduling LPs.
struct SimplexOptions {
  double feasibility_tol = 1e-7;   // bound/row violation considered zero
  double optimality_tol = 1e-7;    // reduced-cost threshold
  double pivot_tol = 1e-9;         // minimum pivot magnitude
  std::int64_t max_iterations = 0; // 0 = auto: 200 * (rows + cols) + 2000
  int refactor_interval = 128;     // rebuild basis inverse every N pivots
  int degenerate_before_bland = 32;
  /// Partial pricing: per pivot, columns are scanned in sections of this
  /// size (rotating through the column space) and the best violated
  /// candidate of the first non-empty section enters. Optimality is only
  /// declared after a full empty wrap. 0 = auto: max(64, columns / 8);
  /// small problems therefore still see full Dantzig pricing.
  int pricing_section = 0;
  /// Shared solve budget (wall-clock watchdog + pivot cap + cancellation),
  /// checked between pivots. Not owned; null = unlimited, which leaves the
  /// solve path identical to a build without budgets. See
  /// lp/solve_budget.h for the sharing and determinism contract.
  SolveBudget* budget = nullptr;
  /// Basis representation. Both engines walk the same pricing / ratio-test /
  /// bound-flip rules, but they round the solved directions differently in
  /// the last ULP (dense inverse-multiply vs sparse LU + eta solves), so on
  /// degenerate problems ties can resolve to different — equally optimal —
  /// vertices. The guaranteed contract, pinned by the lp_sparse
  /// differential tests: identical statuses and infeasibility diagnoses,
  /// the same optimum level to ~1e-9, and feasible equivalent plans.
  SimplexEngine engine = SimplexEngine::kSparseLu;
};

/// Solves `problem` (minimization). The returned Solution carries primal
/// values, row activities, duals (phase-2 y vector, one per row), the
/// pivot count and the final basis. Thread-compatible: one solver instance
/// per thread.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  /// Cold solve.
  Solution solve(const LpProblem& problem) const {
    return solve(problem, nullptr);
  }

  /// Solve with an optional warm-start basis (may be null or stale; see the
  /// header comment — a bad hint costs one fallback, never correctness).
  Solution solve(const LpProblem& problem, const Basis* warm) const;

 private:
  Solution solve_impl(const LpProblem& problem, const Basis* warm) const;

  SimplexOptions options_;
};

}  // namespace flowtime::lp
