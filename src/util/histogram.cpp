#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/table.h"

namespace flowtime::util {

std::string render_histogram(const std::vector<double>& values,
                             const HistogramOptions& options) {
  if (values.empty()) return "(no data)\n";
  const int bins = std::max(1, options.bins);
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const double width = hi > lo ? (hi - lo) / bins : 1.0;

  std::vector<int> counts(static_cast<std::size_t>(bins), 0);
  for (double v : values) {
    int bucket = static_cast<int>((v - lo) / width);
    bucket = std::clamp(bucket, 0, bins - 1);
    ++counts[static_cast<std::size_t>(bucket)];
  }
  const int peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream out;
  for (int b = 0; b < bins; ++b) {
    const double from = lo + b * width;
    const double to = b + 1 == bins ? hi : from + width;
    const int count = counts[static_cast<std::size_t>(b)];
    const int bar =
        peak > 0 ? count * options.max_bar_width / peak : 0;
    out << "[" << format_double(from, options.label_precision) << ", "
        << format_double(to, options.label_precision)
        << (b + 1 == bins ? "]" : ")") << " |" << std::string(bar, '#')
        << std::string(options.max_bar_width - bar, ' ') << "| " << count
        << "\n";
  }
  return out.str();
}

}  // namespace flowtime::util
