// Text histograms for bench output (the Fig. 4(a)/5(a) delta
// distributions render as horizontal bars in the terminal).
#pragma once

#include <string>
#include <vector>

namespace flowtime::util {

struct HistogramOptions {
  int bins = 10;
  int max_bar_width = 40;
  int label_precision = 1;
};

/// Renders values into `bins` equal-width buckets between min and max, one
/// line per bucket:  "[ -700.0,  -560.0) |#######           | 12".
/// Returns a note line for an empty input.
std::string render_histogram(const std::vector<double>& values,
                             const HistogramOptions& options = {});

}  // namespace flowtime::util
