// Small statistics helpers used by the simulator metrics and the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace flowtime::util {

/// Arithmetic mean; returns 0 for an empty input.
double mean(const std::vector<double>& values);

/// Population standard deviation; returns 0 for fewer than two samples.
double stddev(const std::vector<double>& values);

/// Exact quantile by nearest-rank on a copy of the data.
/// `q` in [0, 1] (clamped). Returns 0 for an empty input. This is the one
/// quantile convention in the codebase — obs::Histogram, the benches, the
/// simulator report and the trace reporter all route through these two
/// helpers.
double quantile(std::vector<double> values, double q);

/// Nearest-rank quantile over data the caller has ALREADY sorted ascending.
/// Lets batch consumers (e.g. obs::Histogram::quantiles) pay for one sort
/// and read many quantiles. `q` in [0, 1] (clamped); 0 for an empty input.
double sorted_quantile(const std::vector<double>& sorted, double q);

double min_of(const std::vector<double>& values);
double max_of(const std::vector<double>& values);
double sum_of(const std::vector<double>& values);

/// Streaming accumulator when the full vector is not worth keeping.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace flowtime::util
