// Console table and CSV rendering shared by the bench harnesses.
//
// Every bench binary prints the rows/series of the paper figure it
// regenerates; this keeps that output uniform and grep-friendly.
#pragma once

#include <string>
#include <vector>

namespace flowtime::util {

/// A rectangular table with a header row. Cells are strings; numeric helpers
/// format with fixed precision so columns line up.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls append cells to it.
  Table& begin_row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 2);
  Table& add(std::int64_t value);
  Table& add(int value) { return add(static_cast<std::int64_t>(value)); }
  Table& add(std::size_t value) {
    return add(static_cast<std::int64_t>(value));
  }

  /// Renders with aligned columns, e.g.
  ///   algorithm  | misses | turnaround_s
  ///   -----------+--------+-------------
  ///   FlowTime   |      0 |       522.50
  std::string to_string() const;

  /// Comma-separated rendering (header + rows), for machine consumption.
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (drop-in for benches that
/// print values outside a table).
std::string format_double(double value, int precision = 2);

}  // namespace flowtime::util
