#include "util/strings.h"

namespace flowtime::util {

std::vector<std::string> split(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view input) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!input.empty() && is_space(input.front())) input.remove_prefix(1);
  while (!input.empty() && is_space(input.back())) input.remove_suffix(1);
  return input;
}

bool starts_with(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

}  // namespace flowtime::util
