#include "util/flags.h"

#include <cstdlib>
#include <stdexcept>

#include "util/strings.h"

namespace flowtime::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("positional arguments are not supported: " +
                                  std::string(arg));
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // --name value, unless the next token is another flag (then boolean).
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    queried_[name] = false;
  }
}

std::vector<std::string> Flags::unqueried() const {
  std::vector<std::string> result;
  for (const auto& [name, was_queried] : queried_) {
    if (!was_queried) result.push_back(name);
  }
  return result;
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  queried_[name] = true;
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) const {
  return raw(name).value_or(default_value);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  const auto value = raw(name);
  if (!value) return default_value;
  return std::strtoll(value->c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double default_value) const {
  const auto value = raw(name);
  if (!value) return default_value;
  return std::strtod(value->c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  const auto value = raw(name);
  if (!value) return default_value;
  return *value == "true" || *value == "1" || *value == "yes";
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace flowtime::util
