// Minimal leveled logging for the FlowTime libraries.
//
// Libraries must never write to stdout unconditionally (benches own stdout
// for their result tables), so all diagnostics go through this logger, which
// writes to stderr and is filtered by a process-wide level.
#pragma once

#include <sstream>
#include <string>

namespace flowtime::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that is actually emitted.
/// Thread-safe; defaults to kWarn so tests and benches stay quiet.
void set_log_level(LogLevel level);

/// Returns the current process-wide log level.
LogLevel log_level();

namespace detail {

// Stream-collecting helper behind the FT_LOG macro. Emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool level_enabled(LogLevel level);

}  // namespace detail

}  // namespace flowtime::util

// Usage: FT_LOG(kInfo) << "solved in " << pivots << " pivots";
#define FT_LOG(level)                                                       \
  if (!::flowtime::util::detail::level_enabled(                             \
          ::flowtime::util::LogLevel::level)) {                             \
  } else                                                                    \
    ::flowtime::util::detail::LogMessage(::flowtime::util::LogLevel::level, \
                                         __FILE__, __LINE__)
