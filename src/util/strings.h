// String helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flowtime::util {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view input, char delimiter);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view input);

/// True if `input` starts with `prefix`.
bool starts_with(std::string_view input, std::string_view prefix);

/// Joins elements with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

}  // namespace flowtime::util
