// Deterministic, seedable random number generation.
//
// Every stochastic component in this repository (trace generators, estimation
// error injection, DAG generators) draws from an explicitly seeded Rng so
// experiments are reproducible run to run. Header-only.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>

namespace flowtime::util {

/// Thin wrapper over std::mt19937_64 with the handful of distributions the
/// repository needs. Copyable (copies fork the stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential inter-arrival sample with the given rate (events per unit
  /// time). Used for Poisson ad-hoc job arrivals.
  double exponential(double rate) {
    assert(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Normal sample; used for estimation-error noise.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal sample; heavy-tailed job sizes (ad-hoc jobs).
  double lognormal(double log_mean, double log_stddev) {
    return std::lognormal_distribution<double>(log_mean, log_stddev)(engine_);
  }

  /// Picks an index in [0, weights.size()) proportional to weights.
  template <typename Container>
  std::size_t weighted_index(const Container& weights) {
    std::discrete_distribution<std::size_t> dist(weights.begin(),
                                                 weights.end());
    return dist(engine_);
  }

  /// Derives an independent child stream; pattern for giving each generated
  /// entity its own stream without correlating draws.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace flowtime::util
