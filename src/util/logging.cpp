#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace flowtime::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

bool level_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << level_name(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace detail

}  // namespace flowtime::util
