#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flowtime::util {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return values[std::min(index, values.size() - 1)];
}

double min_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double sum_of(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace flowtime::util
