#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flowtime::util {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return sorted_quantile(values, q);
}

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

double min_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double sum_of(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace flowtime::util
