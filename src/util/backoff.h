// Shared retry-backoff policy: exponential growth with deterministic,
// seeded jitter.
//
// Both fault-handling layers use it. The simulator's task-retry path
// (sim/simulator.cpp) runs it with multiplier 1 and no jitter, which
// reproduces the historical fixed `backoff_slots` delay bit-for-bit; the
// federated coordinator's cell probe policy (cluster/federated_scheduler)
// runs the full exponential + jitter + cap form so flapping cells earn
// growing quarantine windows. Jitter draws come from an explicitly seeded
// util::Rng stream, so two runs with the same seed replay the same delay
// sequence — the repo's chaos-determinism contract. Header-only.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace flowtime::util {

struct BackoffConfig {
  /// First delay (unit is the caller's: slots here, could be seconds).
  double base = 1.0;
  /// Growth factor per attempt; 1.0 = constant (legacy fixed backoff).
  double multiplier = 2.0;
  /// Upper bound on the un-jittered delay; <= 0 disables the cap.
  double cap = 0.0;
  /// Jitter fraction in [0, 1): each delay is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter). 0 disables jitter (and the
  /// jitter stream is never consulted, so draws stay aligned).
  double jitter = 0.0;
  /// Seed for the jitter stream; only consulted when jitter > 0.
  std::uint64_t seed = 0;
};

/// Deterministic exponential-backoff sequence. next() returns the delay for
/// the current attempt and advances; reset() restarts from `base` without
/// rewinding the jitter stream (the stream position is part of the run's
/// deterministic state, not of one retry episode).
class Backoff {
 public:
  explicit Backoff(BackoffConfig config = {})
      : config_(config), jitter_rng_(config.seed) {}

  /// Delay for attempt `attempts()` (0-based), then advances the attempt
  /// counter. Always > 0 for base > 0.
  double next() {
    double delay = config_.base;
    for (int i = 0; i < attempts_; ++i) {
      delay *= config_.multiplier;
      if (config_.cap > 0.0 && delay >= config_.cap) {
        delay = config_.cap;
        break;
      }
    }
    if (config_.cap > 0.0) delay = std::min(delay, config_.cap);
    ++attempts_;
    if (config_.jitter > 0.0) {
      delay *= jitter_rng_.uniform_real(1.0 - config_.jitter,
                                        1.0 + config_.jitter);
    }
    return delay;
  }

  /// Restart the sequence at `base` (e.g. after a stable healthy period).
  /// Deliberately keeps the jitter stream position — see class comment.
  void reset() { attempts_ = 0; }

  int attempts() const { return attempts_; }
  const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
  util::Rng jitter_rng_;
  int attempts_ = 0;
};

}  // namespace flowtime::util
