// Tiny command-line flag parser for the example binaries.
//
// Supports --name=value and --name value forms plus boolean --name.
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flowtime::util {

/// Parses argv once; typed getters fall back to defaults supplied by the
/// caller. Example:
///   Flags flags(argc, argv);
///   const int workflows = flags.get_int("workflows", 5);
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Flag names seen on the command line that were never queried by any
  /// getter; the examples report these as likely typos.
  std::vector<std::string> unqueried() const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  /// True if the flag appeared on the command line at all.
  bool has(const std::string& name) const;

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace flowtime::util
