#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace flowtime::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  assert(!rows_.empty() && "call begin_row() before add()");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::int64_t value) {
  return add(std::to_string(value));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c > 0) out << " | ";
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      out << std::string(widths[c] - std::min(widths[c], cell.size()), ' ');
    }
    out << "\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace flowtime::util
