// Job model (paper §II-A).
//
// A job is a gang of identical tasks, each with an estimated runtime and a
// per-task resource demand. For recurring workflow jobs these estimates come
// from prior runs and may be wrong; `actual_runtime_factor` injects that
// error (actual = estimate * factor). Ad-hoc jobs reuse the same shape but
// the scheduler never sees their size.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "workload/resources.h"

namespace flowtime::workload {

/// One task wave's profile, identical across a job's tasks.
struct TaskProfile {
  double runtime_s = 0.0;   // estimated runtime of one task
  ResourceVec demand{};     // resources one running task occupies
};

/// A data-processing job: `num_tasks` identical tasks.
struct JobSpec {
  std::string name;
  int num_tasks = 1;
  TaskProfile task;
  /// Ground truth divergence from the estimate; 1.0 = estimate exact,
  /// 1.2 = 20% under-estimated, 0.8 = over-estimated. Hidden from schedulers.
  double actual_runtime_factor = 1.0;

  /// s_i^r of the paper: total resource-time demand (estimated), in
  /// resource-seconds — tasks x runtime x per-task demand.
  ResourceVec total_demand() const {
    return scale(task.demand, task.runtime_s * num_tasks);
  }

  /// Ground-truth total demand the simulator executes against.
  ResourceVec actual_total_demand() const {
    return scale(total_demand(), actual_runtime_factor);
  }

  /// Widest footprint the job can occupy in one instant: all tasks running.
  /// Upper-bounds any per-slot allocation.
  ResourceVec max_parallel_demand() const {
    return scale(task.demand, num_tasks);
  }

  /// Minimum wall-clock runtime on a cluster with `capacity`: tasks run in
  /// waves of at most `fit` at a time.
  double min_runtime_s(const ResourceVec& capacity) const {
    int fit = num_tasks;
    for (int r = 0; r < kNumResources; ++r) {
      if (task.demand[r] > 0.0) {
        fit = std::min(
            fit, static_cast<int>(std::floor(capacity[r] / task.demand[r])));
      }
    }
    if (fit <= 0) return std::numeric_limits<double>::infinity();
    const int waves =
        (num_tasks + fit - 1) / fit;
    return waves * task.runtime_s;
  }
};

/// A non-recurring best-effort job (paper §II-A). The spec carries its true
/// size for the simulator; schedulers receive only identity, arrival and
/// width (max parallelism), never the demand.
struct AdhocJob {
  int id = 0;
  double arrival_s = 0.0;
  JobSpec spec;
};

}  // namespace flowtime::workload
