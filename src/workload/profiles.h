// Benchmark job profiles.
//
// The paper's testbed runs HiBench and PUMA MapReduce benchmarks (§VII-A):
// TeraSort, plus word-processing jobs (InvertedIndex, SequenceCount,
// WordCount) and SelfJoin, over >= 10 GB inputs. The cluster only ever
// observes a job as (task count, task runtime, per-task demand), so those
// tuples — sized like typical runs of each benchmark on ~10-50 GB inputs —
// are what this table carries. Ranges are sampled per instantiation.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/job.h"

namespace flowtime::workload {

/// Ranges that one benchmark family draws from.
struct JobProfile {
  std::string name;
  int min_tasks = 1;
  int max_tasks = 1;
  double min_task_runtime_s = 1.0;
  double max_task_runtime_s = 1.0;
  ResourceVec task_demand{};  // cores, memory GB per task
};

/// The PUMA/HiBench-like families used by the Fig. 4/5 workloads.
const std::vector<JobProfile>& puma_profiles();

/// Draws a concrete job from a profile.
JobSpec sample_job(const JobProfile& profile, util::Rng& rng);

/// Draws a job from a uniformly chosen family.
JobSpec sample_any_job(util::Rng& rng);

/// Finds a profile by name; terminates on unknown names (programmer error).
const JobProfile& profile_by_name(const std::string& name);

}  // namespace flowtime::workload
