#include "workload/history.h"

#include "util/stats.h"

namespace flowtime::workload {

namespace {
const std::vector<double> kEmpty;
}

void RunHistory::record(int template_id, dag::NodeId node,
                        double actual_runtime_s) {
  data_[{template_id, node}].push_back(actual_runtime_s);
}

void RunHistory::record_run(int template_id, const Workflow& instance) {
  for (dag::NodeId v = 0; v < instance.dag.num_nodes(); ++v) {
    const JobSpec& job = instance.jobs[static_cast<std::size_t>(v)];
    record(template_id, v, job.task.runtime_s * job.actual_runtime_factor);
  }
}

int RunHistory::runs(int template_id, dag::NodeId node) const {
  const auto it = data_.find({template_id, node});
  return it == data_.end() ? 0 : static_cast<int>(it->second.size());
}

const std::vector<double>& RunHistory::observations(int template_id,
                                                    dag::NodeId node) const {
  const auto it = data_.find({template_id, node});
  return it == data_.end() ? kEmpty : it->second;
}

int apply_history_estimates(const RunHistory& history, int template_id,
                            Workflow& instance,
                            const HistoryEstimatorConfig& config) {
  int replaced = 0;
  for (dag::NodeId v = 0; v < instance.dag.num_nodes(); ++v) {
    const auto& observed = history.observations(template_id, v);
    if (static_cast<int>(observed.size()) < config.min_runs) continue;
    JobSpec& job = instance.jobs[static_cast<std::size_t>(v)];
    const double actual = job.task.runtime_s * job.actual_runtime_factor;
    const double estimate = util::quantile(observed, config.quantile);
    if (estimate <= 0.0) continue;
    job.task.runtime_s = estimate;
    job.actual_runtime_factor = actual / estimate;
    ++replaced;
  }
  return replaced;
}

}  // namespace flowtime::workload
