// Graphviz DOT rendering of workflows: job labels, one rank per dependency
// level (mirroring the decomposer\'s grouping), deadline in the graph label.
#pragma once

#include <string>

#include "workload/workflow.h"

namespace flowtime::workload {

std::string to_dot(const Workflow& workflow);

}  // namespace flowtime::workload
