#include "workload/workflow.h"

#include "dag/critical_path.h"

namespace flowtime::workload {

bool Workflow::valid() const {
  if (static_cast<int>(jobs.size()) != dag.num_nodes()) return false;
  if (dag.num_nodes() == 0) return false;
  if (!dag.is_acyclic()) return false;
  if (deadline_s <= start_s) return false;
  for (const JobSpec& job : jobs) {
    if (job.num_tasks <= 0 || job.task.runtime_s <= 0.0) return false;
    bool any_demand = false;
    for (int r = 0; r < kNumResources; ++r) {
      if (job.task.demand[r] < 0.0) return false;
      if (job.task.demand[r] > 0.0) any_demand = true;
    }
    if (!any_demand) return false;
  }
  return true;
}

ResourceVec Workflow::total_demand() const {
  ResourceVec total{};
  for (const JobSpec& job : jobs) total = add(total, job.total_demand());
  return total;
}

double Workflow::min_makespan_s(const ResourceVec& capacity) const {
  std::vector<double> weight;
  weight.reserve(jobs.size());
  for (const JobSpec& job : jobs) weight.push_back(job.min_runtime_s(capacity));
  const auto cp = dag::critical_path(dag, weight);
  return cp ? cp->length : std::numeric_limits<double>::infinity();
}

}  // namespace flowtime::workload
