// Plain-text scenario files: load and save complete simulation scenarios so
// downstream users can describe their own workloads without writing C++.
//
// Format (one directive per line, `#` comments, whitespace-separated
// key=value fields):
//
//     cluster cores=500 mem_gb=1024 slot_seconds=10
//
//     workflow id=0 name=nightly-etl start=0 deadline=1800
//     job node=0 name=extract tasks=20 runtime=60 cores=1 mem=2
//     job node=1 name=clean tasks=40 runtime=45 cores=1 mem=2 error=1.1
//     edge 0 1
//     end
//
//     adhoc id=0 arrival=120 tasks=8 runtime=30 cores=1 mem=1
//
// `error` is the hidden actual_runtime_factor (defaults to 1). Jobs must
// cover nodes 0..N-1 densely; edges reference those nodes. The writer
// produces files the parser round-trips exactly (modulo formatting).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "workload/trace_gen.h"

namespace flowtime::workload {

/// Cluster line contents (optional in a file; callers fall back to their
/// own defaults when absent). The file format maps 1:1 onto the unified
/// cluster model.
using ScenarioCluster = ClusterSpec;

struct ParsedScenario {
  Scenario scenario;
  std::optional<ScenarioCluster> cluster;
};

struct ParseError {
  int line = 0;
  std::string message;
};

/// Parses a scenario; on failure returns std::nullopt and fills `error`.
std::optional<ParsedScenario> parse_scenario(std::istream& input,
                                             ParseError* error);
std::optional<ParsedScenario> parse_scenario(const std::string& text,
                                             ParseError* error);

/// Serializes a scenario (with an optional cluster line) into the format
/// parse_scenario reads.
std::string write_scenario(const Scenario& scenario,
                           const std::optional<ScenarioCluster>& cluster);

/// Convenience: load from a file path.
std::optional<ParsedScenario> load_scenario_file(const std::string& path,
                                                 ParseError* error);

}  // namespace flowtime::workload
