// Plain-text scenario files: load and save complete simulation scenarios so
// downstream users can describe their own workloads without writing C++.
//
// Format (one directive per line, `#` comments, whitespace-separated
// key=value fields):
//
//     cluster cores=500 mem_gb=1024 slot_seconds=10
//
//     workflow id=0 name=nightly-etl start=0 deadline=1800
//     job node=0 name=extract tasks=20 runtime=60 cores=1 mem=2
//     job node=1 name=clean tasks=40 runtime=45 cores=1 mem=2 error=1.1
//     edge 0 1
//     end
//
//     adhoc id=0 arrival=120 tasks=8 runtime=30 cores=1 mem=1
//
//     fault seed=42
//     fault_machine down=30 up=90 cores=100 mem_gb=200
//     fault_task workflow=0 node=1 slot=45 lose=1 backoff=3
//     fault_straggler workflow=0 node=2 slot=50 factor=2.5
//     fault_cell cell=1 mode=crash slot=40 until=80
//     fault_hazard prob=0.001 lose=1 backoff=2 retries=3
//     fault_noise model=lognormal sigma=0.2 bias=1.1
//
// `error` is the hidden actual_runtime_factor (defaults to 1). Jobs must
// cover nodes 0..N-1 densely; edges reference those nodes. The `fault*`
// directives declare a fault::FaultPlan (see fault/plan.h) — all optional;
// a file without them parses to an empty plan. The writer produces files
// the parser round-trips exactly (modulo formatting).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "fault/plan.h"
#include "workload/trace_gen.h"

namespace flowtime::workload {

/// Cluster line contents (optional in a file; callers fall back to their
/// own defaults when absent). The file format maps 1:1 onto the unified
/// cluster model.
using ScenarioCluster = ClusterSpec;

struct ParsedScenario {
  Scenario scenario;
  std::optional<ScenarioCluster> cluster;
  /// Declared perturbations; empty (the default) when the file has no
  /// `fault*` directives, in which case simulations run undisturbed.
  fault::FaultPlan fault_plan;
};

struct ParseError {
  int line = 0;
  std::string message;
};

/// Parses a scenario; on failure returns std::nullopt and fills `error`.
std::optional<ParsedScenario> parse_scenario(std::istream& input,
                                             ParseError* error);
std::optional<ParsedScenario> parse_scenario(const std::string& text,
                                             ParseError* error);

/// Serializes a scenario (with an optional cluster line) into the format
/// parse_scenario reads. A non-empty `fault_plan` adds the `fault*`
/// directives; the default empty plan writes nothing fault-related, so
/// pre-fault files round-trip unchanged.
std::string write_scenario(const Scenario& scenario,
                           const std::optional<ScenarioCluster>& cluster,
                           const fault::FaultPlan& fault_plan = {});

/// Convenience: load from a file path.
std::optional<ParsedScenario> load_scenario_file(const std::string& path,
                                                 ParseError* error);

}  // namespace flowtime::workload
