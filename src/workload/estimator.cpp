#include "workload/estimator.h"

namespace flowtime::workload {

void inject_estimation_error(Workflow& workflow,
                             const EstimationErrorConfig& config,
                             util::Rng& rng) {
  for (JobSpec& job : workflow.jobs) {
    if (!rng.bernoulli(config.affected_fraction)) continue;
    if (rng.bernoulli(config.under_probability)) {
      job.actual_runtime_factor =
          rng.uniform_real(1.0, 1.0 + config.under_severity);
    } else {
      job.actual_runtime_factor =
          rng.uniform_real(1.0 - config.over_severity, 1.0);
    }
  }
}

void inject_estimation_error(std::vector<Workflow>& workflows,
                             const EstimationErrorConfig& config,
                             util::Rng& rng) {
  for (Workflow& workflow : workflows) {
    inject_estimation_error(workflow, config, rng);
  }
}

}  // namespace flowtime::workload
