#include "workload/trace_gen.h"

#include <algorithm>
#include <cassert>

#include "dag/generators.h"
#include "workload/profiles.h"

namespace flowtime::workload {

namespace {

// Picks a DAG shape with exactly `n` nodes from the scientific families the
// generators provide; falls back to a random layered DAG when a family
// cannot hit `n` exactly.
dag::Dag sample_shape(util::Rng& rng, int n) {
  assert(n >= 3);
  std::vector<dag::Dag> options;
  options.push_back(dag::make_fork_join(n - 2));
  // epigenomics: lanes x depth + 2 == n
  for (int lanes = 2; lanes <= 6; ++lanes) {
    if ((n - 2) % lanes == 0) {
      options.push_back(dag::make_epigenomics_like(lanes, (n - 2) / lanes));
      break;
    }
  }
  if (n >= 5) {
    const int left = std::max(1, (n - 2) / 2);
    options.push_back(dag::make_diamond(left, n - 2 - left));
  }
  if (n % 2 == 1 && (n - 3) / 2 >= 2) {
    options.push_back(dag::make_montage_like((n - 3) / 2));
  }
  if (n % 2 == 1 && (n - 5) / 2 >= 1) {
    options.push_back(dag::make_cybershake_like((n - 5) / 2));
  }
  // Note: the LIGO- and SIPHT-like generators exist (dag/generators.h) but
  // are deliberately NOT in this default pool — the benches' calibrated
  // seeds depend on the pool's draw sequence. Use them via custom
  // scenarios or your own sampler.
  {
    const int layers = static_cast<int>(rng.uniform_int(3, 6));
    options.push_back(dag::make_random_layered(rng, n, layers, 2 * n));
  }
  return options[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(options.size()) - 1))];
}

}  // namespace

Workflow make_workflow(util::Rng& rng, int id, double start_s,
                       const WorkflowGenConfig& config) {
  Workflow w;
  w.id = id;
  w.name = "workflow-" + std::to_string(id);
  w.start_s = start_s;
  w.dag = sample_shape(rng, config.num_jobs);
  w.jobs.reserve(static_cast<std::size_t>(w.dag.num_nodes()));
  for (int v = 0; v < w.dag.num_nodes(); ++v) {
    JobSpec job = sample_any_job(rng);
    job.num_tasks *= std::max(1, config.task_multiplier);
    w.jobs.push_back(std::move(job));
  }
  const double makespan = w.min_makespan_s(config.cluster.capacity);
  const double looseness =
      rng.uniform_real(config.looseness_min, config.looseness_max);
  w.deadline_s = start_s + looseness * makespan;
  assert(w.valid());
  return w;
}

std::vector<AdhocJob> make_adhoc_stream(util::Rng& rng,
                                        const AdhocGenConfig& config) {
  std::vector<AdhocJob> jobs;
  double now = 0.0;
  int id = 0;
  while (true) {
    now += rng.exponential(config.rate_per_s);
    if (now >= config.horizon_s) break;
    AdhocJob job;
    job.id = id++;
    job.arrival_s = now;
    job.spec.name = "adhoc-" + std::to_string(job.id);
    job.spec.num_tasks =
        static_cast<int>(rng.uniform_int(config.min_tasks, config.max_tasks));
    job.spec.task.runtime_s = rng.uniform_real(config.min_task_runtime_s,
                                               config.max_task_runtime_s);
    job.spec.task.demand = config.task_demand;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

Scenario make_fig4_scenario(std::uint64_t seed, const Fig4Config& config) {
  util::Rng rng(seed);
  Scenario scenario;
  scenario.workflows.reserve(static_cast<std::size_t>(config.num_workflows));
  WorkflowGenConfig wf = config.workflow;
  wf.num_jobs = config.jobs_per_workflow;
  for (int i = 0; i < config.num_workflows; ++i) {
    const double start =
        config.num_workflows <= 1
            ? 0.0
            : config.workflow_start_spread_s * i /
                  (config.num_workflows - 1);
    scenario.workflows.push_back(make_workflow(rng, i, start, wf));
  }
  scenario.adhoc_jobs = make_adhoc_stream(rng, config.adhoc);
  return scenario;
}

Scenario make_recurring_trace(std::uint64_t seed,
                              const RecurringTraceConfig& config) {
  util::Rng rng(seed);
  Scenario scenario;
  int id = 0;
  for (int t = 0; t < config.num_templates; ++t) {
    // The template fixes DAG and job sizes; each recurrence re-releases it.
    const Workflow prototype = make_workflow(rng, 0, 0.0, config.workflow);
    const double relative_deadline = prototype.deadline_s;
    for (int k = 0; k < config.recurrences; ++k) {
      Workflow instance = prototype;
      instance.id = id++;
      instance.name =
          "template-" + std::to_string(t) + "-run-" + std::to_string(k);
      instance.start_s = k * config.period_s +
                         rng.uniform_real(0.0, 0.1 * config.period_s);
      instance.deadline_s = instance.start_s + relative_deadline;
      scenario.workflows.push_back(std::move(instance));
    }
  }
  AdhocGenConfig adhoc = config.adhoc;
  adhoc.horizon_s = config.recurrences * config.period_s;
  scenario.adhoc_jobs = make_adhoc_stream(rng, adhoc);
  return scenario;
}

}  // namespace flowtime::workload
