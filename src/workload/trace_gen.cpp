#include "workload/trace_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dag/generators.h"
#include "workload/profiles.h"

namespace flowtime::workload {

namespace {

// Picks a DAG shape with exactly `n` nodes from the scientific families the
// generators provide; falls back to a random layered DAG when a family
// cannot hit `n` exactly.
dag::Dag sample_shape(util::Rng& rng, int n) {
  assert(n >= 3);
  std::vector<dag::Dag> options;
  options.push_back(dag::make_fork_join(n - 2));
  // epigenomics: lanes x depth + 2 == n
  for (int lanes = 2; lanes <= 6; ++lanes) {
    if ((n - 2) % lanes == 0) {
      options.push_back(dag::make_epigenomics_like(lanes, (n - 2) / lanes));
      break;
    }
  }
  if (n >= 5) {
    const int left = std::max(1, (n - 2) / 2);
    options.push_back(dag::make_diamond(left, n - 2 - left));
  }
  if (n % 2 == 1 && (n - 3) / 2 >= 2) {
    options.push_back(dag::make_montage_like((n - 3) / 2));
  }
  if (n % 2 == 1 && (n - 5) / 2 >= 1) {
    options.push_back(dag::make_cybershake_like((n - 5) / 2));
  }
  // Note: the LIGO- and SIPHT-like generators exist (dag/generators.h) but
  // are deliberately NOT in this default pool — the benches' calibrated
  // seeds depend on the pool's draw sequence. Use them via custom
  // scenarios or your own sampler.
  {
    const int layers = static_cast<int>(rng.uniform_int(3, 6));
    options.push_back(dag::make_random_layered(rng, n, layers, 2 * n));
  }
  return options[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(options.size()) - 1))];
}

}  // namespace

Workflow make_workflow(util::Rng& rng, int id, double start_s,
                       const WorkflowGenConfig& config) {
  Workflow w;
  w.id = id;
  w.name = "workflow-" + std::to_string(id);
  w.start_s = start_s;
  w.dag = sample_shape(rng, config.num_jobs);
  w.jobs.reserve(static_cast<std::size_t>(w.dag.num_nodes()));
  for (int v = 0; v < w.dag.num_nodes(); ++v) {
    JobSpec job = sample_any_job(rng);
    job.num_tasks *= std::max(1, config.task_multiplier);
    w.jobs.push_back(std::move(job));
  }
  const double makespan = w.min_makespan_s(config.cluster.capacity);
  const double looseness =
      rng.uniform_real(config.looseness_min, config.looseness_max);
  w.deadline_s = start_s + looseness * makespan;
  assert(w.valid());
  return w;
}

std::vector<AdhocJob> make_adhoc_stream(util::Rng& rng,
                                        const AdhocGenConfig& config) {
  std::vector<AdhocJob> jobs;
  double now = 0.0;
  int id = 0;
  while (true) {
    now += rng.exponential(config.rate_per_s);
    if (now >= config.horizon_s) break;
    AdhocJob job;
    job.id = id++;
    job.arrival_s = now;
    job.spec.name = "adhoc-" + std::to_string(job.id);
    job.spec.num_tasks =
        static_cast<int>(rng.uniform_int(config.min_tasks, config.max_tasks));
    job.spec.task.runtime_s = rng.uniform_real(config.min_task_runtime_s,
                                               config.max_task_runtime_s);
    job.spec.task.demand = config.task_demand;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

Scenario make_fig4_scenario(std::uint64_t seed, const Fig4Config& config) {
  util::Rng rng(seed);
  Scenario scenario;
  scenario.workflows.reserve(static_cast<std::size_t>(config.num_workflows));
  WorkflowGenConfig wf = config.workflow;
  wf.num_jobs = config.jobs_per_workflow;
  for (int i = 0; i < config.num_workflows; ++i) {
    const double start =
        config.num_workflows <= 1
            ? 0.0
            : config.workflow_start_spread_s * i /
                  (config.num_workflows - 1);
    scenario.workflows.push_back(make_workflow(rng, i, start, wf));
  }
  scenario.adhoc_jobs = make_adhoc_stream(rng, config.adhoc);
  return scenario;
}

Scenario make_recurring_trace(std::uint64_t seed,
                              const RecurringTraceConfig& config) {
  util::Rng rng(seed);
  Scenario scenario;
  int id = 0;
  for (int t = 0; t < config.num_templates; ++t) {
    // The template fixes DAG and job sizes; each recurrence re-releases it.
    const Workflow prototype = make_workflow(rng, 0, 0.0, config.workflow);
    const double relative_deadline = prototype.deadline_s;
    for (int k = 0; k < config.recurrences; ++k) {
      Workflow instance = prototype;
      instance.id = id++;
      instance.name =
          "template-" + std::to_string(t) + "-run-" + std::to_string(k);
      instance.start_s = k * config.period_s +
                         rng.uniform_real(0.0, 0.1 * config.period_s);
      instance.deadline_s = instance.start_s + relative_deadline;
      scenario.workflows.push_back(std::move(instance));
    }
  }
  AdhocGenConfig adhoc = config.adhoc;
  adhoc.horizon_s = config.recurrences * config.period_s;
  scenario.adhoc_jobs = make_adhoc_stream(rng, adhoc);
  return scenario;
}

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Diurnal intensity multiplier at time t, in [1 - amp, 1 + amp].
double diurnal_factor(double t, double amplitude, double period_s,
                      double phase_s) {
  if (amplitude <= 0.0 || period_s <= 0.0) return 1.0;
  return 1.0 + amplitude * std::sin(kTwoPi * (t - phase_s) / period_s);
}

/// One heavy-tailed task runtime draw, clamped to the config's bounds.
double sample_task_runtime(util::Rng& rng,
                           const ProductionAdhocConfig& config) {
  const AdhocGenConfig& base = config.base;
  double runtime = 0.0;
  switch (config.runtime_tail) {
    case RuntimeTail::kUniform:
      return rng.uniform_real(base.min_task_runtime_s,
                              base.max_task_runtime_s);
    case RuntimeTail::kLognormal: {
      // Median pinned at the uniform range's midpoint so the tail family is
      // swappable without re-tuning the base rate.
      const double median =
          0.5 * (base.min_task_runtime_s + base.max_task_runtime_s);
      runtime = rng.lognormal(std::log(std::max(median, 1e-9)),
                              config.lognormal_sigma);
      break;
    }
    case RuntimeTail::kPareto: {
      // Inverse-CDF Pareto: xm * (1 - u)^(-1/alpha).
      const double u = rng.uniform_real(0.0, 1.0);
      runtime = config.pareto_xm_s *
                std::pow(1.0 - std::min(u, 1.0 - 1e-12),
                         -1.0 / std::max(config.pareto_alpha, 1e-6));
      break;
    }
  }
  return std::clamp(runtime, base.min_task_runtime_s,
                    config.max_task_runtime_cap_s);
}

}  // namespace

std::vector<AdhocJob> make_production_adhoc_stream(
    util::Rng& rng, const ProductionAdhocConfig& config) {
  const AdhocGenConfig& base = config.base;
  // Flash-crowd windows, placed before the arrival loop so the whole stream
  // is a deterministic function of the seed.
  std::vector<std::pair<double, double>> flashes;
  for (int i = 0; i < config.flash_crowds; ++i) {
    const double start = rng.uniform_real(
        0.0, std::max(base.horizon_s - config.flash_duration_s, 0.0));
    flashes.emplace_back(start, start + config.flash_duration_s);
  }
  const auto rate_at = [&](double t) {
    double rate = base.rate_per_s *
                  diurnal_factor(t, config.diurnal_amplitude,
                                 config.diurnal_period_s,
                                 config.diurnal_phase_s);
    for (const auto& [start, end] : flashes) {
      if (t >= start && t < end) {
        rate *= config.flash_multiplier;
        break;
      }
    }
    return std::max(rate, 0.0);
  };
  double peak = base.rate_per_s * (1.0 + std::max(config.diurnal_amplitude,
                                                  0.0));
  if (!flashes.empty()) peak *= std::max(config.flash_multiplier, 1.0);
  if (peak <= 0.0) return {};

  // Lewis–Shedler thinning against the constant peak rate.
  std::vector<AdhocJob> jobs;
  double now = 0.0;
  int id = 0;
  while (true) {
    now += rng.exponential(peak);
    if (now >= base.horizon_s) break;
    if (rng.uniform_real(0.0, 1.0) * peak > rate_at(now)) continue;
    AdhocJob job;
    job.id = id++;
    job.arrival_s = now;
    job.spec.name = "adhoc-" + std::to_string(job.id);
    job.spec.num_tasks =
        static_cast<int>(rng.uniform_int(base.min_tasks, base.max_tasks));
    job.spec.task.runtime_s = sample_task_runtime(rng, config);
    job.spec.task.demand = base.task_demand;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

Scenario make_production_scenario(std::uint64_t seed,
                                  const ProductionScenarioConfig& config) {
  util::Rng rng(seed);
  Scenario scenario;
  scenario.workflows.reserve(static_cast<std::size_t>(config.num_workflows));
  // Workflow releases rejection-sampled against the diurnal sinusoid: draw
  // a uniform time, accept with probability rate(t)/peak, retry otherwise.
  const double peak = 1.0 + std::max(config.diurnal_amplitude, 0.0);
  std::vector<double> starts;
  starts.reserve(static_cast<std::size_t>(config.num_workflows));
  for (int i = 0; i < config.num_workflows; ++i) {
    double t = 0.0;
    do {
      t = rng.uniform_real(0.0, config.horizon_s);
    } while (rng.uniform_real(0.0, peak) >
             diurnal_factor(t, config.diurnal_amplitude,
                            config.diurnal_period_s,
                            config.diurnal_phase_s));
    starts.push_back(t);
  }
  std::sort(starts.begin(), starts.end());
  for (int i = 0; i < config.num_workflows; ++i) {
    Workflow w = make_workflow(rng, i, starts[static_cast<std::size_t>(i)],
                               config.workflow);
    if (config.num_tenants > 1) {
      w.tenant = static_cast<int>(rng.uniform_int(0, config.num_tenants - 1));
    }
    scenario.workflows.push_back(std::move(w));
  }
  ProductionAdhocConfig adhoc = config.adhoc;
  adhoc.base.horizon_s = config.horizon_s;
  scenario.adhoc_jobs = make_production_adhoc_stream(rng, adhoc);
  return scenario;
}

}  // namespace flowtime::workload
