#include "workload/dot.h"

#include <sstream>

#include "dag/topology.h"

namespace flowtime::workload {

std::string to_dot(const Workflow& workflow) {
  std::ostringstream out;
  out << "digraph workflow_" << workflow.id << " {\n";
  out << "  rankdir=TB;\n  node [shape=box];\n";
  out << "  label=\"" << workflow.name << " (deadline "
      << workflow.deadline_s << " s)\";\n";
  for (dag::NodeId v = 0; v < workflow.dag.num_nodes(); ++v) {
    const JobSpec& job = workflow.jobs[static_cast<std::size_t>(v)];
    out << "  n" << v << " [label=\"" << job.name << "\\n"
        << job.num_tasks << " x " << job.task.runtime_s << " s\"];\n";
  }
  // Same-level jobs share a rank, mirroring the decomposer\'s grouping.
  const auto groups = dag::level_groups(workflow.dag);
  if (groups) {
    for (const auto& group : *groups) {
      if (group.size() < 2) continue;
      out << "  { rank=same;";
      for (dag::NodeId v : group) out << " n" << v << ";";
      out << " }\n";
    }
  }
  for (dag::NodeId v = 0; v < workflow.dag.num_nodes(); ++v) {
    for (dag::NodeId c : workflow.dag.children(v)) {
      out << "  n" << v << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace flowtime::workload
