// Workflow model: W_i = {Q_i, ws_i, wd_i, P_i} (paper §II-A).
//
// A workflow is a DAG whose node v carries job `jobs[v]`, released at
// `start_s` with an absolute deadline `deadline_s`. Workflows recur, so all
// job estimates are known at release time.
#pragma once

#include <string>
#include <vector>

#include "dag/dag.h"
#include "workload/job.h"

namespace flowtime::workload {

struct Workflow {
  int id = 0;
  std::string name;
  double start_s = 0.0;     // ws_i: release time
  double deadline_s = 0.0;  // wd_i: absolute deadline
  dag::Dag dag;             // P_i: inter-job dependencies, node = job index
  std::vector<JobSpec> jobs;  // Q_i, indexed by DAG node id
  /// Owning tenant for multi-tenant quota accounting (federated scheduling,
  /// DESIGN.md §13). Tenant 0 is the default single-tenant world; the
  /// scheduling pipeline itself ignores this field.
  int tenant = 0;

  /// Structural sanity: one job per node, acyclic, deadline after start,
  /// positive job sizes.
  bool valid() const;

  /// Sum of estimated total demand over all jobs.
  ResourceVec total_demand() const;

  /// Lower bound on the makespan on a cluster with `capacity`: critical path
  /// weighted by each job's minimum runtime. The decomposer needs slack =
  /// (deadline - start) - this.
  double min_makespan_s(const ResourceVec& capacity) const;
};

/// Globally unique identifier of a job inside a workflow.
struct WorkflowJobRef {
  int workflow_id = 0;
  dag::NodeId node = 0;

  friend bool operator==(const WorkflowJobRef&, const WorkflowJobRef&) =
      default;
  friend auto operator<=>(const WorkflowJobRef&, const WorkflowJobRef&) =
      default;
};

}  // namespace flowtime::workload
