// Workload and trace generation.
//
// Substitutes for the paper's Huawei production traces and testbed runs
// (§VII-A): recurring deadline-aware workflows with loose deadlines (their
// trace example: a 24 h deadline on a ~2 h workflow) sharing the cluster
// with a Poisson stream of small ad-hoc jobs. All randomness flows from the
// caller's seed.
#pragma once

#include <vector>

#include "util/rng.h"
#include "workload/job.h"
#include "workload/workflow.h"

namespace flowtime::workload {

/// A complete simulation scenario.
struct Scenario {
  std::vector<Workflow> workflows;
  std::vector<AdhocJob> adhoc_jobs;
};

struct WorkflowGenConfig {
  int num_jobs = 18;
  /// Deadline = start + looseness x min makespan; the paper's traces have
  /// looseness around 12 (24 h deadline, ~2 h runtime); the testbed
  /// experiment uses tighter values so baselines can actually miss.
  double looseness_min = 2.5;
  double looseness_max = 4.0;
  /// Cluster model used to compute the minimum makespan for deadline
  /// setting (only the capacity matters here).
  ClusterSpec cluster;
  /// Multiplies every sampled job's task count: the paper's testbed rounds
  /// process >1 TB per round, i.e. jobs several times larger than the base
  /// profile table.
  int task_multiplier = 1;
};

/// Generates one workflow whose DAG shape is drawn from the scientific
/// families (fork-join, epigenomics-, montage-, cybershake-like, random
/// layered) sized to exactly `config.num_jobs` jobs.
Workflow make_workflow(util::Rng& rng, int id, double start_s,
                       const WorkflowGenConfig& config);

struct AdhocGenConfig {
  double rate_per_s = 0.05;  // Poisson arrival rate
  double horizon_s = 3600.0; // arrivals occur in [0, horizon)
  int min_tasks = 4;
  int max_tasks = 20;
  double min_task_runtime_s = 10.0;
  double max_task_runtime_s = 40.0;
  ResourceVec task_demand{1.0, 2.0};
};

/// Poisson stream of small best-effort jobs.
std::vector<AdhocJob> make_adhoc_stream(util::Rng& rng,
                                        const AdhocGenConfig& config);

struct Fig4Config {
  int num_workflows = 5;
  int jobs_per_workflow = 18;
  double workflow_start_spread_s = 600.0;
  WorkflowGenConfig workflow;
  AdhocGenConfig adhoc;
};

/// The §VII-B.1 testbed workload: 5 workflows x 18 jobs = 90 deadline-aware
/// jobs plus an ad-hoc stream.
Scenario make_fig4_scenario(std::uint64_t seed, const Fig4Config& config = {});

struct RecurringTraceConfig {
  int num_templates = 3;       // distinct recurring workflows
  int recurrences = 4;         // instances of each template
  double period_s = 3600.0;    // one instance per period
  WorkflowGenConfig workflow;
  AdhocGenConfig adhoc;
};

/// Trace-driven scenario: each template recurs with the same DAG and sizes
/// (fresh estimation noise is injected separately if desired).
Scenario make_recurring_trace(std::uint64_t seed,
                              const RecurringTraceConfig& config = {});

}  // namespace flowtime::workload
