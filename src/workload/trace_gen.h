// Workload and trace generation.
//
// Substitutes for the paper's Huawei production traces and testbed runs
// (§VII-A): recurring deadline-aware workflows with loose deadlines (their
// trace example: a 24 h deadline on a ~2 h workflow) sharing the cluster
// with a Poisson stream of small ad-hoc jobs. All randomness flows from the
// caller's seed.
#pragma once

#include <vector>

#include "util/rng.h"
#include "workload/job.h"
#include "workload/workflow.h"

namespace flowtime::workload {

/// A complete simulation scenario.
struct Scenario {
  std::vector<Workflow> workflows;
  std::vector<AdhocJob> adhoc_jobs;
};

struct WorkflowGenConfig {
  int num_jobs = 18;
  /// Deadline = start + looseness x min makespan; the paper's traces have
  /// looseness around 12 (24 h deadline, ~2 h runtime); the testbed
  /// experiment uses tighter values so baselines can actually miss.
  double looseness_min = 2.5;
  double looseness_max = 4.0;
  /// Cluster model used to compute the minimum makespan for deadline
  /// setting (only the capacity matters here).
  ClusterSpec cluster;
  /// Multiplies every sampled job's task count: the paper's testbed rounds
  /// process >1 TB per round, i.e. jobs several times larger than the base
  /// profile table.
  int task_multiplier = 1;
};

/// Generates one workflow whose DAG shape is drawn from the scientific
/// families (fork-join, epigenomics-, montage-, cybershake-like, random
/// layered) sized to exactly `config.num_jobs` jobs.
Workflow make_workflow(util::Rng& rng, int id, double start_s,
                       const WorkflowGenConfig& config);

struct AdhocGenConfig {
  double rate_per_s = 0.05;  // Poisson arrival rate
  double horizon_s = 3600.0; // arrivals occur in [0, horizon)
  int min_tasks = 4;
  int max_tasks = 20;
  double min_task_runtime_s = 10.0;
  double max_task_runtime_s = 40.0;
  ResourceVec task_demand{1.0, 2.0};
};

/// Poisson stream of small best-effort jobs.
std::vector<AdhocJob> make_adhoc_stream(util::Rng& rng,
                                        const AdhocGenConfig& config);

struct Fig4Config {
  int num_workflows = 5;
  int jobs_per_workflow = 18;
  double workflow_start_spread_s = 600.0;
  WorkflowGenConfig workflow;
  AdhocGenConfig adhoc;
};

/// The §VII-B.1 testbed workload: 5 workflows x 18 jobs = 90 deadline-aware
/// jobs plus an ad-hoc stream.
Scenario make_fig4_scenario(std::uint64_t seed, const Fig4Config& config = {});

struct RecurringTraceConfig {
  int num_templates = 3;       // distinct recurring workflows
  int recurrences = 4;         // instances of each template
  double period_s = 3600.0;    // one instance per period
  WorkflowGenConfig workflow;
  AdhocGenConfig adhoc;
};

/// Trace-driven scenario: each template recurs with the same DAG and sizes
/// (fresh estimation noise is injected separately if desired).
Scenario make_recurring_trace(std::uint64_t seed,
                              const RecurringTraceConfig& config = {});

// --- Production-shaped arrivals (ROADMAP item 4) --------------------------
// Real clusters are not homogeneous-Poisson: load breathes diurnally, flash
// crowds spike it for minutes, and task runtimes are heavy-tailed. These
// generators reproduce those three shapes with everything still flowing
// from one seed; the sharding bench stresses federation with them.

/// Tail family for ad-hoc task runtimes.
enum class RuntimeTail {
  kUniform,    // the plain AdhocGenConfig behaviour
  kLognormal,  // median at the uniform range's midpoint, sigma below
  kPareto,     // scale pareto_xm_s, shape pareto_alpha
};

struct ProductionAdhocConfig {
  /// Base rate/horizon/task geometry; the shaping below modulates it.
  AdhocGenConfig base;
  /// Instantaneous rate = base.rate_per_s *
  ///   (1 + diurnal_amplitude * sin(2*pi*(t - diurnal_phase_s)/period))
  /// (amplitude in [0, 1); 0 disables the diurnal component).
  double diurnal_amplitude = 0.6;
  double diurnal_period_s = 86400.0;
  double diurnal_phase_s = 0.0;
  /// Flash crowds: this many windows of `flash_duration_s`, placed
  /// uniformly at random in the horizon, during which the instantaneous
  /// rate is multiplied by `flash_multiplier`.
  int flash_crowds = 2;
  double flash_multiplier = 8.0;
  double flash_duration_s = 300.0;
  /// Heavy-tailed task runtimes (clamped to
  /// [base.min_task_runtime_s, max_task_runtime_cap_s]).
  RuntimeTail runtime_tail = RuntimeTail::kLognormal;
  double lognormal_sigma = 1.0;
  double pareto_alpha = 1.8;  // < 2 = infinite variance, the DC regime
  double pareto_xm_s = 8.0;
  double max_task_runtime_cap_s = 1800.0;
};

/// Nonhomogeneous Poisson stream via Lewis–Shedler thinning: candidates are
/// drawn at the peak rate and accepted with probability rate(t)/peak.
std::vector<AdhocJob> make_production_adhoc_stream(
    util::Rng& rng, const ProductionAdhocConfig& config);

struct ProductionScenarioConfig {
  int num_workflows = 20;
  /// Workflows are tagged round-robin-free: each draws a uniform tenant in
  /// [0, num_tenants) for multi-tenant quota scenarios.
  int num_tenants = 4;
  double horizon_s = 4.0 * 3600.0;
  /// Workflow releases follow the same diurnal intensity as the ad-hoc
  /// stream (rejection-sampled against the sinusoid).
  double diurnal_amplitude = 0.6;
  double diurnal_period_s = 86400.0;
  double diurnal_phase_s = 0.0;
  WorkflowGenConfig workflow;
  ProductionAdhocConfig adhoc;
};

/// Full production-shaped scenario: diurnally released multi-tenant
/// workflows plus a diurnal/flash-crowd/heavy-tailed ad-hoc stream over the
/// same horizon.
Scenario make_production_scenario(std::uint64_t seed,
                                  const ProductionScenarioConfig& config = {});

}  // namespace flowtime::workload
