// Run history and history-based runtime estimation.
//
// The paper's premise (§I, §II-A) is that workflows recur, so per-job
// estimates come from prior runs — and §III-A demands robustness precisely
// because "the input data or the code may have changed in different runs".
// The generators elsewhere hand schedulers oracle estimates; this module
// closes the loop for recurring traces: record each completed run's actual
// task runtimes, and estimate the next release from a percentile of the
// observations (Morpheus uses the same idea for SLO inference [5]).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "workload/workflow.h"

namespace flowtime::workload {

/// Observed actual runtimes per (template id, node), appended run by run.
class RunHistory {
 public:
  /// Records one completed run of a template job.
  void record(int template_id, dag::NodeId node, double actual_runtime_s);

  /// Records every job of a finished instance (actual = estimate x factor).
  void record_run(int template_id, const Workflow& instance);

  /// Number of recorded runs for a template job.
  int runs(int template_id, dag::NodeId node) const;

  /// Observations for one template job (empty if none).
  const std::vector<double>& observations(int template_id,
                                          dag::NodeId node) const;

 private:
  std::map<std::pair<int, dag::NodeId>, std::vector<double>> data_;
};

struct HistoryEstimatorConfig {
  /// Estimate = this quantile of the observed runtimes, in [0, 1] (the
  /// codebase-wide util::quantile convention). High quantiles buy safety
  /// (fewer under-estimates) at the cost of reserving more.
  double quantile = 0.90;
  /// With fewer observations than this, fall back to the provided prior.
  int min_runs = 2;
};

/// Rewrites a workflow instance's task runtime estimates from history.
/// Each job's `task.runtime_s` becomes the configured percentile of its
/// recorded actuals; `actual_runtime_factor` is re-derived so the GROUND
/// TRUTH (estimate x factor) is unchanged — only the scheduler's knowledge
/// shifts. Jobs without enough history keep their prior estimate.
/// Returns the number of jobs whose estimate was replaced.
int apply_history_estimates(const RunHistory& history, int template_id,
                            Workflow& instance,
                            const HistoryEstimatorConfig& config = {});

}  // namespace flowtime::workload
