#include "workload/profiles.h"

#include <cstdlib>

#include "util/logging.h"

namespace flowtime::workload {

const std::vector<JobProfile>& puma_profiles() {
  // Task counts follow input size (~one map task per 128-512 MB block over
  // 10-50 GB); runtimes and per-task footprints follow common YARN container
  // sizing (1 core / 2-4 GB).
  static const std::vector<JobProfile> kProfiles = {
      {"TeraSort", 40, 120, 30.0, 90.0, ResourceVec{1.0, 3.0}},
      {"WordCount", 30, 100, 20.0, 60.0, ResourceVec{1.0, 2.0}},
      {"InvertedIndex", 30, 90, 30.0, 80.0, ResourceVec{1.0, 3.0}},
      {"SequenceCount", 30, 90, 30.0, 90.0, ResourceVec{1.0, 3.0}},
      {"SelfJoin", 20, 80, 40.0, 100.0, ResourceVec{1.0, 4.0}},
      {"AdjacencyList", 20, 60, 30.0, 70.0, ResourceVec{1.0, 2.0}},
      {"HistogramRatings", 10, 50, 20.0, 50.0, ResourceVec{1.0, 2.0}},
  };
  return kProfiles;
}

JobSpec sample_job(const JobProfile& profile, util::Rng& rng) {
  JobSpec job;
  job.name = profile.name;
  job.num_tasks =
      static_cast<int>(rng.uniform_int(profile.min_tasks, profile.max_tasks));
  job.task.runtime_s =
      rng.uniform_real(profile.min_task_runtime_s, profile.max_task_runtime_s);
  job.task.demand = profile.task_demand;
  return job;
}

JobSpec sample_any_job(util::Rng& rng) {
  const auto& profiles = puma_profiles();
  const auto index = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(profiles.size()) - 1));
  return sample_job(profiles[index], rng);
}

const JobProfile& profile_by_name(const std::string& name) {
  for (const JobProfile& profile : puma_profiles()) {
    if (profile.name == name) return profile;
  }
  FT_LOG(kError) << "unknown job profile: " << name;
  std::abort();
}

}  // namespace flowtime::workload
