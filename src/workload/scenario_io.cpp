#include "workload/scenario_io.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace flowtime::workload {

namespace {

// key=value fields after the directive word.
using Fields = std::map<std::string, std::string>;

bool parse_fields(const std::vector<std::string>& tokens, std::size_t first,
                  Fields* fields, std::string* message) {
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *message = "expected key=value, got '" + token + "'";
      return false;
    }
    (*fields)[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return true;
}

bool get_double(const Fields& fields, const std::string& key, bool required,
                double fallback, double* out, std::string* message) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    if (required) {
      *message = "missing field '" + key + "'";
      return false;
    }
    *out = fallback;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    *message = "field '" + key + "' is not a number: " + it->second;
    return false;
  }
  // strtod happily parses "nan" and "inf"; neither is a meaningful
  // capacity, runtime, demand or deadline anywhere in the format.
  if (!std::isfinite(*out)) {
    *message = "field '" + key + "' is not finite: " + it->second;
    return false;
  }
  return true;
}

bool require_nonnegative(double value, const std::string& key,
                         std::string* message) {
  if (value >= 0.0) return true;
  *message = "field '" + key + "' must be >= 0, got " + std::to_string(value);
  return false;
}

bool require_positive(double value, const std::string& key,
                      std::string* message) {
  if (value > 0.0) return true;
  *message = "field '" + key + "' must be > 0, got " + std::to_string(value);
  return false;
}

bool get_int(const Fields& fields, const std::string& key, bool required,
             int fallback, int* out, std::string* message) {
  double value = 0.0;
  if (!get_double(fields, key, required, fallback, &value, message)) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool get_uint64(const Fields& fields, const std::string& key, bool required,
                std::uint64_t fallback, std::uint64_t* out,
                std::string* message) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    if (required) {
      *message = "missing field '" + key + "'";
      return false;
    }
    *out = fallback;
    return true;
  }
  char* end = nullptr;
  *out = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    *message = "field '" + key + "' is not an integer: " + it->second;
    return false;
  }
  return true;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream stream{std::string(line)};
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::optional<ParsedScenario> parse_scenario(std::istream& input,
                                             ParseError* error) {
  ParsedScenario parsed;
  std::optional<Workflow> current;
  std::map<int, JobSpec> current_jobs;  // by node id
  std::vector<std::pair<int, int>> current_edges;

  auto fail = [&](int line, std::string message) {
    if (error != nullptr) *error = ParseError{line, std::move(message)};
    return std::nullopt;
  };

  auto finish_workflow = [&](int line_number,
                             std::string* message) -> bool {
    const int n = current_jobs.empty()
                      ? 0
                      : current_jobs.rbegin()->first + 1;
    if (n == 0) {
      *message = "workflow has no jobs";
      return false;
    }
    if (static_cast<int>(current_jobs.size()) != n) {
      *message = "job nodes must cover 0.." + std::to_string(n - 1) +
                 " densely";
      return false;
    }
    current->dag = dag::Dag(n);
    for (const auto& [from, to] : current_edges) {
      if (from < 0 || from >= n || to < 0 || to >= n) {
        *message = "edge references unknown node";
        return false;
      }
      current->dag.add_edge(from, to);
    }
    current->jobs.clear();
    for (auto& [node, job] : current_jobs) {
      (void)node;
      current->jobs.push_back(std::move(job));
    }
    if (!current->valid()) {
      *message = "workflow is invalid (cycle, bad deadline or empty jobs)";
      return false;
    }
    parsed.scenario.workflows.push_back(std::move(*current));
    current.reset();
    current_jobs.clear();
    current_edges.clear();
    (void)line_number;
    return true;
  };

  std::string line;
  int line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = tokenize(trimmed);
    const std::string& directive = tokens.front();
    Fields fields;
    std::string message;

    if (directive == "cluster") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      ScenarioCluster cluster;
      if (!get_double(fields, "cores", true, 0, &cluster.capacity[kCpu],
                      &message) ||
          !get_double(fields, "mem_gb", true, 0,
                      &cluster.capacity[kMemory], &message) ||
          !get_double(fields, "slot_seconds", false, 10.0,
                      &cluster.slot_seconds, &message)) {
        return fail(line_number, message);
      }
      if (!require_positive(cluster.capacity[kCpu], "cores", &message) ||
          !require_positive(cluster.capacity[kMemory], "mem_gb", &message) ||
          !require_positive(cluster.slot_seconds, "slot_seconds", &message)) {
        return fail(line_number, message);
      }
      parsed.cluster = cluster;
    } else if (directive == "workflow") {
      if (current.has_value()) {
        return fail(line_number, "previous workflow not closed with 'end'");
      }
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      Workflow w;
      if (!get_int(fields, "id", true, 0, &w.id, &message) ||
          !get_double(fields, "start", true, 0, &w.start_s, &message) ||
          !get_double(fields, "deadline", true, 0, &w.deadline_s,
                      &message)) {
        return fail(line_number, message);
      }
      if (!require_nonnegative(w.start_s, "start", &message) ||
          !require_nonnegative(w.deadline_s, "deadline", &message)) {
        return fail(line_number, message);
      }
      if (w.deadline_s <= w.start_s) {
        return fail(line_number, "workflow deadline must be after its start");
      }
      if (!get_int(fields, "tenant", false, 0, &w.tenant, &message)) {
        return fail(line_number, message);
      }
      if (w.tenant < 0) {
        return fail(line_number, "workflow tenant must be >= 0");
      }
      w.name = fields.count("name") ? fields["name"]
                                    : "workflow-" + std::to_string(w.id);
      current = std::move(w);
    } else if (directive == "job") {
      if (!current.has_value()) {
        return fail(line_number, "'job' outside a workflow block");
      }
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      int node = 0;
      JobSpec job;
      double cores = 0.0;
      double mem = 0.0;
      if (!get_int(fields, "node", true, 0, &node, &message) ||
          !get_int(fields, "tasks", true, 0, &job.num_tasks, &message) ||
          !get_double(fields, "runtime", true, 0, &job.task.runtime_s,
                      &message) ||
          !get_double(fields, "cores", true, 0, &cores, &message) ||
          !get_double(fields, "mem", true, 0, &mem, &message) ||
          !get_double(fields, "error", false, 1.0,
                      &job.actual_runtime_factor, &message)) {
        return fail(line_number, message);
      }
      if (job.num_tasks <= 0) {
        return fail(line_number, "job must have at least one task");
      }
      if (!require_nonnegative(job.task.runtime_s, "runtime", &message) ||
          !require_nonnegative(cores, "cores", &message) ||
          !require_nonnegative(mem, "mem", &message) ||
          !require_positive(job.actual_runtime_factor, "error", &message)) {
        return fail(line_number, message);
      }
      job.task.demand = ResourceVec{cores, mem};
      job.name = fields.count("name") ? fields["name"]
                                      : "job-" + std::to_string(node);
      if (current_jobs.count(node)) {
        return fail(line_number,
                    "duplicate job node " + std::to_string(node));
      }
      current_jobs[node] = std::move(job);
    } else if (directive == "edge") {
      if (!current.has_value()) {
        return fail(line_number, "'edge' outside a workflow block");
      }
      if (tokens.size() != 3) {
        return fail(line_number, "edge needs exactly two node ids");
      }
      current_edges.emplace_back(std::atoi(tokens[1].c_str()),
                                 std::atoi(tokens[2].c_str()));
    } else if (directive == "end") {
      if (!current.has_value()) {
        return fail(line_number, "'end' without a workflow block");
      }
      if (!finish_workflow(line_number, &message)) {
        return fail(line_number, message);
      }
    } else if (directive == "adhoc") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      AdhocJob job;
      double cores = 0.0;
      double mem = 0.0;
      if (!get_int(fields, "id", true, 0, &job.id, &message) ||
          !get_double(fields, "arrival", true, 0, &job.arrival_s,
                      &message) ||
          !get_int(fields, "tasks", true, 0, &job.spec.num_tasks,
                   &message) ||
          !get_double(fields, "runtime", true, 0, &job.spec.task.runtime_s,
                      &message) ||
          !get_double(fields, "cores", true, 0, &cores, &message) ||
          !get_double(fields, "mem", true, 0, &mem, &message) ||
          !get_double(fields, "error", false, 1.0,
                      &job.spec.actual_runtime_factor, &message)) {
        return fail(line_number, message);
      }
      if (job.spec.num_tasks <= 0) {
        return fail(line_number, "job must have at least one task");
      }
      if (!require_nonnegative(job.arrival_s, "arrival", &message) ||
          !require_nonnegative(job.spec.task.runtime_s, "runtime",
                               &message) ||
          !require_nonnegative(cores, "cores", &message) ||
          !require_nonnegative(mem, "mem", &message) ||
          !require_positive(job.spec.actual_runtime_factor, "error",
                            &message)) {
        return fail(line_number, message);
      }
      job.spec.task.demand = ResourceVec{cores, mem};
      job.spec.name = fields.count("name")
                          ? fields["name"]
                          : "adhoc-" + std::to_string(job.id);
      parsed.scenario.adhoc_jobs.push_back(std::move(job));
    } else if (directive == "fault") {
      if (!parse_fields(tokens, 1, &fields, &message) ||
          !get_uint64(fields, "seed", true, 0, &parsed.fault_plan.seed,
                      &message)) {
        return fail(line_number, message);
      }
    } else if (directive == "fault_machine") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      fault::MachineFault machine;
      if (!get_int(fields, "down", true, 0, &machine.down_slot, &message) ||
          !get_int(fields, "up", false, -1, &machine.up_slot, &message) ||
          !get_double(fields, "cores", true, 0,
                      &machine.capacity[kCpu], &message) ||
          !get_double(fields, "mem_gb", true, 0,
                      &machine.capacity[kMemory], &message)) {
        return fail(line_number, message);
      }
      parsed.fault_plan.machines.push_back(machine);
    } else if (directive == "fault_task") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      fault::TaskFault task;
      if (!get_int(fields, "workflow", false, -1, &task.workflow_id,
                   &message) ||
          !get_int(fields, "node", true, -1, &task.node, &message) ||
          !get_int(fields, "slot", true, 0, &task.slot, &message) ||
          !get_double(fields, "lose", false, 1.0, &task.lost_fraction,
                      &message) ||
          !get_int(fields, "backoff", false, 1, &task.backoff_slots,
                   &message)) {
        return fail(line_number, message);
      }
      parsed.fault_plan.task_faults.push_back(task);
    } else if (directive == "fault_straggler") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      fault::StragglerFault straggler;
      if (!get_int(fields, "workflow", false, -1, &straggler.workflow_id,
                   &message) ||
          !get_int(fields, "node", true, -1, &straggler.node, &message) ||
          !get_int(fields, "slot", true, 0, &straggler.slot, &message) ||
          !get_double(fields, "factor", true, 2.0, &straggler.factor,
                      &message)) {
        return fail(line_number, message);
      }
      parsed.fault_plan.stragglers.push_back(straggler);
    } else if (directive == "fault_solver") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      fault::SolverFault solver;
      double pivots = 0.0;
      int fail_flag = 0;
      if (!get_int(fields, "slot", true, 0, &solver.slot, &message) ||
          !get_int(fields, "until", false, -1, &solver.until_slot,
                   &message) ||
          !get_double(fields, "budget_ms", false, -1.0, &solver.budget_ms,
                      &message) ||
          !get_double(fields, "pivots", false, 0, &pivots, &message) ||
          !get_int(fields, "fail", false, 0, &fail_flag, &message)) {
        return fail(line_number, message);
      }
      solver.pivot_cap = static_cast<std::int64_t>(pivots);
      solver.force_numerical_failure = fail_flag != 0;
      if (solver.slot < 0) {
        return fail(line_number, "field 'slot' must be >= 0");
      }
      parsed.fault_plan.solver_faults.push_back(solver);
    } else if (directive == "fault_cell") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      fault::CellFault cell;
      const auto mode_it = fields.find("mode");
      if (mode_it != fields.end()) {
        if (mode_it->second == "crash") {
          cell.mode = fault::CellFaultMode::kCrash;
        } else if (mode_it->second == "hang") {
          cell.mode = fault::CellFaultMode::kHang;
        } else if (mode_it->second == "flap") {
          cell.mode = fault::CellFaultMode::kFlap;
        } else if (mode_it->second == "solver") {
          cell.mode = fault::CellFaultMode::kSolverFail;
        } else {
          return fail(line_number,
                      "unknown cell fault mode '" + mode_it->second + "'");
        }
      }
      if (!get_int(fields, "cell", true, 0, &cell.cell, &message) ||
          !get_int(fields, "slot", true, 0, &cell.slot, &message) ||
          !get_int(fields, "until", false, -1, &cell.until_slot, &message) ||
          !get_int(fields, "period", false, 0, &cell.period_slots,
                   &message) ||
          !get_double(fields, "jitter", false, 0.0, &cell.jitter,
                      &message)) {
        return fail(line_number, message);
      }
      if (cell.cell < 0) {
        return fail(line_number, "field 'cell' must be >= 0");
      }
      if (cell.slot < 0) {
        return fail(line_number, "field 'slot' must be >= 0");
      }
      parsed.fault_plan.cell_faults.push_back(cell);
    } else if (directive == "fault_hazard") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      fault::HazardConfig& hazard = parsed.fault_plan.hazard;
      if (!get_double(fields, "prob", true, 0, &hazard.prob_per_slot,
                      &message) ||
          !get_double(fields, "lose", false, 1.0, &hazard.lost_fraction,
                      &message) ||
          !get_int(fields, "backoff", false, 1, &hazard.backoff_slots,
                   &message) ||
          !get_int(fields, "retries", false, 3, &hazard.max_retries,
                   &message)) {
        return fail(line_number, message);
      }
    } else if (directive == "fault_noise") {
      if (!parse_fields(tokens, 1, &fields, &message)) {
        return fail(line_number, message);
      }
      fault::NoiseConfig& noise = parsed.fault_plan.noise;
      const auto model_it = fields.find("model");
      if (model_it == fields.end()) {
        return fail(line_number, "missing field 'model'");
      }
      if (model_it->second == "lognormal") {
        noise.model = fault::NoiseModel::kLognormal;
      } else if (model_it->second == "adversarial") {
        noise.model = fault::NoiseModel::kAdversarial;
      } else if (model_it->second == "none") {
        noise.model = fault::NoiseModel::kNone;
      } else {
        return fail(line_number,
                    "unknown noise model '" + model_it->second + "'");
      }
      if (!get_double(fields, "sigma", false, 0.0, &noise.sigma,
                      &message) ||
          !get_double(fields, "bias", false, 1.0, &noise.bias, &message)) {
        return fail(line_number, message);
      }
    } else {
      return fail(line_number, "unknown directive '" + directive + "'");
    }
  }
  if (current.has_value()) {
    return fail(line_number, "file ended inside a workflow block");
  }
  return parsed;
}

std::optional<ParsedScenario> parse_scenario(const std::string& text,
                                             ParseError* error) {
  std::istringstream stream(text);
  return parse_scenario(stream, error);
}

std::string write_scenario(const Scenario& scenario,
                           const std::optional<ScenarioCluster>& cluster,
                           const fault::FaultPlan& fault_plan) {
  std::ostringstream out;
  out << std::setprecision(15);  // lossless enough for round-trips
  out << "# FlowTime scenario\n";
  if (cluster) {
    out << "cluster cores=" << cluster->capacity[kCpu]
        << " mem_gb=" << cluster->capacity[kMemory]
        << " slot_seconds=" << cluster->slot_seconds << "\n";
  }
  for (const Workflow& w : scenario.workflows) {
    out << "\nworkflow id=" << w.id << " name=" << w.name
        << " start=" << w.start_s << " deadline=" << w.deadline_s;
    if (w.tenant != 0) out << " tenant=" << w.tenant;
    out << "\n";
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      const JobSpec& job = w.jobs[static_cast<std::size_t>(v)];
      out << "job node=" << v << " name=" << job.name
          << " tasks=" << job.num_tasks << " runtime=" << job.task.runtime_s
          << " cores=" << job.task.demand[kCpu]
          << " mem=" << job.task.demand[kMemory];
      if (job.actual_runtime_factor != 1.0) {
        out << " error=" << job.actual_runtime_factor;
      }
      out << "\n";
    }
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      for (dag::NodeId child : w.dag.children(v)) {
        out << "edge " << v << " " << child << "\n";
      }
    }
    out << "end\n";
  }
  if (!scenario.adhoc_jobs.empty()) out << "\n";
  for (const AdhocJob& job : scenario.adhoc_jobs) {
    out << "adhoc id=" << job.id << " name=" << job.spec.name
        << " arrival=" << job.arrival_s << " tasks=" << job.spec.num_tasks
        << " runtime=" << job.spec.task.runtime_s
        << " cores=" << job.spec.task.demand[kCpu]
        << " mem=" << job.spec.task.demand[kMemory];
    if (job.spec.actual_runtime_factor != 1.0) {
      out << " error=" << job.spec.actual_runtime_factor;
    }
    out << "\n";
  }
  if (!fault_plan.empty()) {
    out << "\nfault seed=" << fault_plan.seed << "\n";
    for (const fault::MachineFault& machine : fault_plan.machines) {
      out << "fault_machine down=" << machine.down_slot;
      if (machine.up_slot >= 0) out << " up=" << machine.up_slot;
      out << " cores=" << machine.capacity[kCpu]
          << " mem_gb=" << machine.capacity[kMemory] << "\n";
    }
    for (const fault::TaskFault& task : fault_plan.task_faults) {
      out << "fault_task workflow=" << task.workflow_id
          << " node=" << task.node << " slot=" << task.slot
          << " lose=" << task.lost_fraction
          << " backoff=" << task.backoff_slots << "\n";
    }
    for (const fault::StragglerFault& straggler : fault_plan.stragglers) {
      out << "fault_straggler workflow=" << straggler.workflow_id
          << " node=" << straggler.node << " slot=" << straggler.slot
          << " factor=" << straggler.factor << "\n";
    }
    for (const fault::SolverFault& solver : fault_plan.solver_faults) {
      out << "fault_solver slot=" << solver.slot;
      if (solver.until_slot >= 0) out << " until=" << solver.until_slot;
      if (solver.budget_ms >= 0.0) out << " budget_ms=" << solver.budget_ms;
      if (solver.pivot_cap > 0) out << " pivots=" << solver.pivot_cap;
      if (solver.force_numerical_failure) out << " fail=1";
      out << "\n";
    }
    for (const fault::CellFault& cell : fault_plan.cell_faults) {
      out << "fault_cell cell=" << cell.cell
          << " mode=" << fault::to_string(cell.mode)
          << " slot=" << cell.slot;
      if (cell.until_slot >= 0) out << " until=" << cell.until_slot;
      if (cell.period_slots > 0) out << " period=" << cell.period_slots;
      if (cell.jitter > 0.0) out << " jitter=" << cell.jitter;
      out << "\n";
    }
    if (fault_plan.hazard.active()) {
      out << "fault_hazard prob=" << fault_plan.hazard.prob_per_slot
          << " lose=" << fault_plan.hazard.lost_fraction
          << " backoff=" << fault_plan.hazard.backoff_slots
          << " retries=" << fault_plan.hazard.max_retries << "\n";
    }
    if (fault_plan.noise.active()) {
      out << "fault_noise model=" << fault::to_string(fault_plan.noise.model)
          << " sigma=" << fault_plan.noise.sigma
          << " bias=" << fault_plan.noise.bias << "\n";
    }
  }
  return out.str();
}

std::optional<ParsedScenario> load_scenario_file(const std::string& path,
                                                 ParseError* error) {
  std::ifstream input(path);
  if (!input) {
    if (error != nullptr) {
      *error = ParseError{0, "cannot open file: " + path};
    }
    return std::nullopt;
  }
  return parse_scenario(input, error);
}

}  // namespace flowtime::workload
