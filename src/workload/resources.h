// Multi-resource vectors (paper notation: resource types r in R).
//
// The evaluation cluster has two resource types — CPU cores and memory GB
// (500 cores / 1 TB in Fig. 7) — but everything loops over kNumResources so
// adding a type is a one-line change.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace flowtime::workload {

inline constexpr int kNumResources = 2;
inline constexpr int kCpu = 0;
inline constexpr int kMemory = 1;

using ResourceVec = std::array<double, kNumResources>;

inline const char* resource_name(int r) {
  switch (r) {
    case kCpu:
      return "cpu";
    case kMemory:
      return "mem_gb";
    default:
      return "?";
  }
}

inline ResourceVec zeros() { return ResourceVec{}; }

inline ResourceVec add(const ResourceVec& a, const ResourceVec& b) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] + b[r];
  return out;
}

inline ResourceVec sub(const ResourceVec& a, const ResourceVec& b) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] - b[r];
  return out;
}

inline ResourceVec scale(const ResourceVec& a, double k) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] * k;
  return out;
}

inline ResourceVec elementwise_min(const ResourceVec& a,
                                   const ResourceVec& b) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] < b[r] ? a[r] : b[r];
  return out;
}

inline ResourceVec clamp_nonnegative(const ResourceVec& a) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] > 0.0 ? a[r] : 0.0;
  return out;
}

/// True when every component of `a` is <= the matching component of `b`
/// within `tol`.
inline bool fits_within(const ResourceVec& a, const ResourceVec& b,
                        double tol = 1e-9) {
  for (int r = 0; r < kNumResources; ++r) {
    if (a[r] > b[r] + tol) return false;
  }
  return true;
}

/// True when every component is <= tol (a fully delivered demand).
inline bool is_zero(const ResourceVec& a, double tol = 1e-9) {
  for (int r = 0; r < kNumResources; ++r) {
    if (a[r] > tol || a[r] < -tol) return false;
  }
  return true;
}

inline std::string to_string(const ResourceVec& a) {
  std::string out = "(";
  for (int r = 0; r < kNumResources; ++r) {
    if (r > 0) out += ", ";
    out += std::to_string(a[r]);
  }
  out += ")";
  return out;
}

}  // namespace flowtime::workload
