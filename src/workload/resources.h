// Multi-resource vectors (paper notation: resource types r in R).
//
// The evaluation cluster has two resource types — CPU cores and memory GB
// (500 cores / 1 TB in Fig. 7) — but everything loops over kNumResources so
// adding a type is a one-line change.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace flowtime::workload {

inline constexpr int kNumResources = 2;
inline constexpr int kCpu = 0;
inline constexpr int kMemory = 1;

using ResourceVec = std::array<double, kNumResources>;

inline const char* resource_name(int r) {
  switch (r) {
    case kCpu:
      return "cpu";
    case kMemory:
      return "mem_gb";
    default:
      return "?";
  }
}

inline ResourceVec zeros() { return ResourceVec{}; }

inline ResourceVec add(const ResourceVec& a, const ResourceVec& b) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] + b[r];
  return out;
}

inline ResourceVec sub(const ResourceVec& a, const ResourceVec& b) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] - b[r];
  return out;
}

inline ResourceVec scale(const ResourceVec& a, double k) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] * k;
  return out;
}

inline ResourceVec elementwise_min(const ResourceVec& a,
                                   const ResourceVec& b) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] < b[r] ? a[r] : b[r];
  return out;
}

inline ResourceVec clamp_nonnegative(const ResourceVec& a) {
  ResourceVec out{};
  for (int r = 0; r < kNumResources; ++r) out[r] = a[r] > 0.0 ? a[r] : 0.0;
  return out;
}

/// True when every component of `a` is <= the matching component of `b`
/// within `tol`.
inline bool fits_within(const ResourceVec& a, const ResourceVec& b,
                        double tol = 1e-9) {
  for (int r = 0; r < kNumResources; ++r) {
    if (a[r] > b[r] + tol) return false;
  }
  return true;
}

/// True when every component is <= tol (a fully delivered demand).
inline bool is_zero(const ResourceVec& a, double tol = 1e-9) {
  for (int r = 0; r < kNumResources; ++r) {
    if (a[r] > tol || a[r] < -tol) return false;
  }
  return true;
}

inline std::string to_string(const ResourceVec& a) {
  std::string out = "(";
  for (int r = 0; r < kNumResources; ++r) {
    if (r > 0) out += ", ";
    out += std::to_string(a[r]);
  }
  out += ")";
  return out;
}

/// The single entry point for describing the cluster to any component:
/// total capacity in resource units (cores, GB) and the scheduling slot
/// length in seconds. Every config struct that needs the cluster model
/// embeds one of these — re-declaring `cluster_capacity` / `slot_seconds`
/// as loose fields is how the pre-ClusterSpec API let callers feed the
/// scheduler and the simulator diverging cluster models.
struct ClusterSpec {
  ResourceVec capacity{500.0, 1024.0};  // Fig. 7 cluster: 500 cores, 1 TB
  double slot_seconds = 10.0;

  /// Capacity integrated over one slot, in resource-seconds.
  ResourceVec capacity_per_slot() const { return scale(capacity, slot_seconds); }

  bool operator==(const ClusterSpec&) const = default;
};

/// Tolerant comparison for skew detection (configs are often rebuilt from
/// parsed text, so exact equality is too strict).
inline bool approx_equal(const ClusterSpec& a, const ClusterSpec& b,
                         double tol = 1e-9) {
  if (a.slot_seconds > b.slot_seconds + tol ||
      b.slot_seconds > a.slot_seconds + tol) {
    return false;
  }
  return fits_within(a.capacity, b.capacity, tol) &&
         fits_within(b.capacity, a.capacity, tol);
}

inline std::string to_string(const ClusterSpec& spec) {
  return "cluster{capacity=" + to_string(spec.capacity) +
         ", slot_seconds=" + std::to_string(spec.slot_seconds) + "}";
}

}  // namespace flowtime::workload
