// Estimation-error injection (paper §III-A "robustness to estimation
// errors": input data or code changes between runs of a recurring job make
// prior-run estimates wrong in either direction).
//
// The generators produce jobs whose estimates are exact
// (actual_runtime_factor == 1). This module perturbs ground truth while
// leaving the estimates — which are all schedulers ever see — untouched.
#pragma once

#include "util/rng.h"
#include "workload/workflow.h"

namespace flowtime::workload {

struct EstimationErrorConfig {
  /// Fraction of jobs whose ground truth diverges from the estimate.
  double affected_fraction = 0.3;
  /// Probability an affected job is under-estimated (actual > estimate);
  /// otherwise it is over-estimated.
  double under_probability = 0.5;
  /// Under-estimated jobs draw actual_runtime_factor from
  /// [1, 1 + under_severity]; over-estimated from [1 - over_severity, 1].
  double under_severity = 0.25;
  double over_severity = 0.25;
};

/// Perturbs every job of the workflow in place.
void inject_estimation_error(Workflow& workflow,
                             const EstimationErrorConfig& config,
                             util::Rng& rng);

/// Convenience overload for a whole scenario.
void inject_estimation_error(std::vector<Workflow>& workflows,
                             const EstimationErrorConfig& config,
                             util::Rng& rng);

}  // namespace flowtime::workload
