#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "util/stats.h"

namespace flowtime::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(value);
  sum_ += value;
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(samples_.size());
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return util::quantile(samples_, q);
}

std::vector<double> Histogram::quantiles(const std::vector<double>& qs) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(util::sorted_quantile(sorted, q));
  return out;
}

std::vector<double> Histogram::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::string Histogram::render(const util::HistogramOptions& options) const {
  return util::render_histogram(samples(), options);
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  sum_ = 0.0;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::vector<double> qs = histogram->quantiles({0.5, 0.95, 0.99});
    out << name << " count=" << histogram->count()
        << " mean=" << histogram->mean()
        << " p50=" << qs[0]
        << " p95=" << qs[1]
        << " p99=" << qs[2]
        << " max=" << histogram->max() << "\n";
  }
  return out.str();
}

MetricSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot::HistogramStats stats;
    stats.name = name;
    stats.count = histogram->count();
    stats.sum = histogram->sum();
    stats.min = histogram->min();
    stats.max = histogram->max();
    const std::vector<double> qs =
        histogram->quantiles({0.5, 0.9, 0.95, 0.99});
    stats.p50 = qs[0];
    stats.p90 = qs[1];
    stats.p95 = qs[2];
    stats.p99 = qs[3];
    snap.histograms.push_back(std::move(stats));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: lives for the process
  return *instance;
}

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(double* elapsed_out, Histogram* histogram)
    : out_(elapsed_out), histogram_(histogram), start_ns_(now_ns()) {}

double ScopedTimer::elapsed_s() const {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() {
  const double elapsed = elapsed_s();
  if (out_ != nullptr) *out_ = elapsed;
  if (histogram_ != nullptr) histogram_->observe(elapsed);
}

}  // namespace flowtime::obs
