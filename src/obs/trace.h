// Structured JSONL event tracing.
//
// Every event is one flat JSON object per line: a "type" field plus
// primitive key/value pairs (string, number, bool). Flat objects keep the
// sink trivial, make traces greppable, and let the bundled parser
// (parse_flat_json) validate them without a JSON library — the same parser
// the trace_smoke ctest target and obs_test use.
//
// Emission is two-stage:
//   1. the instrumentation site guards on `obs::enabled()` (one atomic
//      load; see metrics.h) and only then builds a TraceEvent,
//   2. `obs::emit(event)` forwards the rendered line to the installed
//      TraceSink, or drops it when none is installed.
//
// The event schema (types and their fields) is documented in DESIGN.md
// "Observability"; changing a field name there is a compatibility break for
// trace consumers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace flowtime::obs {

/// Builder for one flat JSON event line. Field order is preserved.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view type);

  TraceEvent& field(std::string_view key, double value);
  TraceEvent& field(std::string_view key, std::int64_t value);
  TraceEvent& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& field(std::string_view key, std::size_t value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& field(std::string_view key, bool value);
  TraceEvent& field(std::string_view key, std::string_view value);
  TraceEvent& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }

  /// The finished line, e.g. {"type":"replan","slot":4,"cause":"overrun"}.
  std::string to_json() const;

 private:
  std::string body_;  // comma-joined "key":value pairs, sans braces
};

/// Receives rendered JSONL lines (no trailing newline). Implementations
/// must be safe to call from the thread that owns the solver/simulator;
/// the bundled sinks are fully thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const std::string& json_line) = 0;
};

/// Appends one line per event to a file. Buffered; flushed on destruction.
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  /// False when the file could not be opened; writes are then dropped.
  bool ok() const { return file_ != nullptr; }
  void write(const std::string& json_line) override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Collects lines in memory — the test sink.
class MemorySink : public TraceSink {
 public:
  void write(const std::string& json_line) override;
  std::vector<std::string> lines() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// Installs the process-wide sink (replacing any previous one) and enables
/// the observability layer. Passing nullptr is equivalent to
/// clear_trace_sink().
void set_trace_sink(std::unique_ptr<TraceSink> sink);

/// Removes the sink (flushing file sinks) and disables the layer.
void clear_trace_sink();

/// The installed sink, or nullptr. The returned pointer stays valid until
/// the next set_trace_sink/clear_trace_sink call.
TraceSink* trace_sink();

/// Renders and forwards `event` to the installed sink; no-op without one.
void emit(const TraceEvent& event);

/// Convenience for binaries with a --trace-out flag: installs a
/// JsonlFileSink at `path` and enables the layer. Returns false (and
/// installs nothing) when the file cannot be opened.
bool open_trace_file(const std::string& path);

/// Process-wide monotonically increasing causality id (starts at 1). The
/// concurrent runtime stamps one on every queued SchedulerEvent and on every
/// replan attempt so the `event_enqueued → batch_formed → solve_* →
/// plan_adopted|plan_discarded` chain can be re-joined from the flat JSONL
/// stream. Thread-safe; cheap enough to call on the enabled path only.
std::int64_t next_trace_id();

/// Small dense per-thread lane id (0, 1, 2, ... in first-call order). Causal
/// trace events carry it as "lane" so the Chrome-trace exporter can rebuild a
/// real-thread view (serving lane, solver-pool lanes, producer lanes) without
/// leaking raw OS thread ids into the trace. Stable for the thread's life.
int thread_lane();

/// Wall clock in seconds since the first obs timestamp of the process
/// (steady_clock, so monotonic). Shared by spans and causal events — one
/// timebase means per-stage latencies subtract exactly.
double wall_now_s();

/// Restarts trace ids from 1. Test isolation only
/// (obs::testing::ScopedRegistryReset); never call mid-run. Thread lanes are
/// deliberately NOT reset: they are thread_local and outlive tests.
void reset_trace_ids_for_testing();

/// Parses one flat JSON object line as produced by TraceEvent. On success
/// fills `out` with key -> raw value (strings unescaped and unquoted,
/// numbers/bools as their literal text) and returns true. Rejects nested
/// objects/arrays and malformed syntax — strict enough to make the
/// trace_smoke target a real format check.
bool parse_flat_json(const std::string& line,
                     std::map<std::string, std::string>* out);

}  // namespace flowtime::obs
