// Trace and metric exporters: Chrome trace-event JSON and Prometheus text.
//
// Both converters are pure functions over already-collected data, so they
// can run inside the producing process (flowtime_sim --prom-out) or in an
// offline tool re-reading a JSONL file (examples/trace_report --chrome-out)
// without touching the live obs state.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace flowtime::obs {

/// One parsed JSONL trace line, as produced by parse_flat_json: key → raw
/// value text (numbers/bools literal, strings unescaped).
using TraceRecord = std::map<std::string, std::string>;

/// Converts a trace-event stream into the Chrome trace-event "JSON object
/// format" ({"traceEvents": [...]}) that chrome://tracing and Perfetto
/// load. Timestamps are simulation time in microseconds.
///
/// Mapping:
///   * span_begin/span_end pairs become complete ("ph":"X") slices. The
///     span hierarchy is projected onto Chrome's process/thread axes:
///     every `workflow` span gets its own pid (track group) with the
///     workflow slice on tid 0, each `job` span under it gets its own tid,
///     and nested spans (`placement`) inherit their parent job's tid —
///     Perfetto then shows workflow → job → placement as nested tracks.
///     Spans outside any workflow (ad-hoc jobs, `plan`, `admitted`) share
///     pid 0, one tid per root span.
///   * replan, deadline_risk, workflow_arrival, admission and config_skew
///     events become instant events ("ph":"i") on the matching track.
///   * process_name/thread_name metadata events label every track.
///   * Causal-chain events from the concurrent runtime (`event_enqueued` /
///     `event_dequeued` / `solve_begin` / `solve_done` /
///     `plan_adopted|plan_discarded`) additionally build a real-thread
///     view: one extra process ("runtime threads") whose tids are the
///     obs::thread_lane ids the events were emitted from — producer lanes
///     show per-event queue-wait slices, solver-pool lanes show solve
///     slices, the serving lane shows adoption slices — and each trigger
///     event's chain is drawn as Chrome flow arrows ("ph":"s"/"t"/"f")
///     from its queue slice through the solve to the adoption. This
///     process uses wall-clock microseconds (the chain crosses threads, so
///     sim time cannot order it); the sim-time projection above is
///     unchanged alongside.
///
/// Unpaired span_begins are closed at the latest timestamp seen (the
/// simulator's end_open_spans makes this a no-op for well-formed traces).
std::string render_chrome_trace(const std::vector<TraceRecord>& events);

/// Renders a metric snapshot in the Prometheus text exposition format
/// (version 0.0.4). Dots in metric names become underscores and everything
/// is prefixed (`core.replans` → `flowtime_core_replans_total`); counters
/// get the `_total` suffix and `# TYPE counter`, gauges `# TYPE gauge`, and
/// histograms are exported as summaries with exact p50/p90/p95/p99 quantiles
/// plus `_sum`/`_count`.
std::string render_prometheus(const MetricSnapshot& snapshot,
                              const std::string& prefix = "flowtime");

}  // namespace flowtime::obs
