#include "obs/export.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace flowtime::obs {

namespace {

// Minimal JSON string escaping (mirrors TraceEvent's rules).
std::string escaped(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

double field_double(const TraceRecord& record, const char* key,
                    double fallback = 0.0) {
  const auto it = record.find(key);
  if (it == record.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() ? value : fallback;
}

std::string field_string(const TraceRecord& record, const char* key,
                         const std::string& fallback = "") {
  const auto it = record.find(key);
  return it == record.end() ? fallback : it->second;
}

// Remaining record fields rendered as an "args" object (values kept as
// strings: lossless, and Perfetto displays them fine).
std::string args_object(const TraceRecord& record) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : record) {
    if (key == "type") continue;
    if (!first) out += ",";
    first = false;
    out += escaped(key) + ":" + escaped(value);
  }
  out += "}";
  return out;
}

struct Span {
  std::int64_t id = 0;
  std::int64_t parent = 0;
  std::string kind;
  std::string name;
  double begin_s = 0.0;
  double end_s = 0.0;
  bool ended = false;
  TraceRecord begin_record;
  int pid = 0;
  int tid = 0;
};

bool is_instant_type(const std::string& type) {
  return type == "replan" || type == "deadline_risk" ||
         type == "workflow_arrival" || type == "admission" ||
         type == "config_skew";
}

}  // namespace

std::string render_chrome_trace(const std::vector<TraceRecord>& events) {
  std::map<std::int64_t, Span> spans;   // by span id, insertion = id order
  std::vector<const TraceRecord*> instants;
  double latest_s = 0.0;

  for (const TraceRecord& record : events) {
    const std::string type = field_string(record, "type");
    const double sim_s = field_double(record, "sim_s",
                                      field_double(record, "now_s"));
    latest_s = std::max(latest_s, sim_s);
    if (type == "span_begin") {
      Span span;
      span.id = static_cast<std::int64_t>(field_double(record, "span"));
      span.parent = static_cast<std::int64_t>(field_double(record, "parent"));
      span.kind = field_string(record, "kind");
      span.name = field_string(record, "name");
      span.begin_s = sim_s;
      span.begin_record = record;
      spans[span.id] = std::move(span);
    } else if (type == "span_end") {
      const auto it = spans.find(
          static_cast<std::int64_t>(field_double(record, "span")));
      if (it != spans.end()) {
        it->second.end_s = sim_s;
        it->second.ended = true;
      }
    } else if (is_instant_type(type)) {
      instants.push_back(&record);
    }
  }

  // Project the span tree onto Chrome's pid/tid axes: one pid per workflow
  // span (slice on tid 0), one tid per job under it, nested spans inherit
  // their parent's tid; everything outside a workflow shares pid 0.
  int next_pid = 1;
  std::map<int, int> next_tid;  // per pid; 0 is the workflow slice itself
  next_tid[0] = 1;
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;
  process_names[0] = "cluster";
  for (auto& [id, span] : spans) {
    (void)id;
    if (span.kind == "workflow") {
      span.pid = next_pid++;
      span.tid = 0;
      next_tid[span.pid] = 1;
      process_names[span.pid] = span.name;
      thread_names[{span.pid, 0}] = "workflow";
      continue;
    }
    const auto parent_it = spans.find(span.parent);
    if (parent_it == spans.end()) {  // root span outside any workflow
      span.pid = 0;
      span.tid = next_tid[0]++;
      thread_names[{0, span.tid}] = span.kind + " " + span.name;
    } else if (parent_it->second.kind == "workflow") {
      span.pid = parent_it->second.pid;
      span.tid = next_tid[span.pid]++;
      thread_names[{span.pid, span.tid}] = span.name;
    } else {  // nested (placement under job): share the parent's track
      span.pid = parent_it->second.pid;
      span.tid = parent_it->second.tid;
    }
  }
  // Instant events get one per-type track under pid 0.
  std::map<std::string, int> instant_tids;
  for (const TraceRecord* record : instants) {
    const std::string type = field_string(*record, "type");
    if (!instant_tids.count(type)) {
      const int tid = next_tid[0]++;
      instant_tids[type] = tid;
      thread_names[{0, tid}] = type;
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event_json) {
    if (!first) out += ",";
    first = false;
    out += "\n" + event_json;
  };
  for (const auto& [pid, name] : process_names) {
    append("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
           escaped(name) + "}}");
  }
  for (const auto& [key, name] : thread_names) {
    append("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(key.first) + ",\"tid\":" +
           std::to_string(key.second) + ",\"args\":{\"name\":" +
           escaped(name) + "}}");
  }
  for (const auto& [id, span] : spans) {
    (void)id;
    const double end_s = span.ended ? span.end_s : latest_s;
    append("{\"ph\":\"X\",\"name\":" + escaped(span.name) +
           ",\"cat\":" + escaped(span.kind) +
           ",\"ts\":" + number(span.begin_s * 1e6) +
           ",\"dur\":" + number(std::max(end_s - span.begin_s, 0.0) * 1e6) +
           ",\"pid\":" + std::to_string(span.pid) +
           ",\"tid\":" + std::to_string(span.tid) +
           ",\"args\":" + args_object(span.begin_record) + "}");
  }
  for (const TraceRecord* record : instants) {
    const std::string type = field_string(*record, "type");
    std::string name = type;
    if (type == "replan") {
      name += "(" + field_string(*record, "cause") + ")";
    } else if (type == "deadline_risk") {
      name += ":" + field_string(*record, "level");
    }
    append("{\"ph\":\"i\",\"s\":\"g\",\"name\":" + escaped(name) +
           ",\"cat\":" + escaped(type) +
           ",\"ts\":" + number(field_double(*record, "now_s") * 1e6) +
           ",\"pid\":0,\"tid\":" + std::to_string(instant_tids[type]) +
           ",\"args\":" + args_object(*record) + "}");
  }
  out += "\n]}\n";
  return out;
}

std::string render_prometheus(const MetricSnapshot& snapshot,
                              const std::string& prefix) {
  auto sanitize = [&](const std::string& name) {
    std::string out = prefix.empty() ? "" : prefix + "_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      out.push_back(ok ? c : '_');
    }
    return out;
  };
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = sanitize(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = sanitize(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + number(value) + "\n";
  }
  for (const MetricSnapshot::HistogramStats& stats : snapshot.histograms) {
    const std::string metric = sanitize(stats.name);
    out += "# TYPE " + metric + " summary\n";
    out += metric + "{quantile=\"0.5\"} " + number(stats.p50) + "\n";
    out += metric + "{quantile=\"0.9\"} " + number(stats.p90) + "\n";
    out += metric + "{quantile=\"0.99\"} " + number(stats.p99) + "\n";
    out += metric + "_sum " + number(stats.sum) + "\n";
    out += metric + "_count " + std::to_string(stats.count) + "\n";
  }
  return out;
}

}  // namespace flowtime::obs
