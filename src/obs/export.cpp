#include "obs/export.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace flowtime::obs {

namespace {

// Minimal JSON string escaping (mirrors TraceEvent's rules).
std::string escaped(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

double field_double(const TraceRecord& record, const char* key,
                    double fallback = 0.0) {
  const auto it = record.find(key);
  if (it == record.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() ? value : fallback;
}

std::string field_string(const TraceRecord& record, const char* key,
                         const std::string& fallback = "") {
  const auto it = record.find(key);
  return it == record.end() ? fallback : it->second;
}

// Remaining record fields rendered as an "args" object (values kept as
// strings: lossless, and Perfetto displays them fine).
std::string args_object(const TraceRecord& record) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : record) {
    if (key == "type") continue;
    if (!first) out += ",";
    first = false;
    out += escaped(key) + ":" + escaped(value);
  }
  out += "}";
  return out;
}

struct Span {
  std::int64_t id = 0;
  std::int64_t parent = 0;
  std::string kind;
  std::string name;
  double begin_s = 0.0;
  double end_s = 0.0;
  bool ended = false;
  TraceRecord begin_record;
  int pid = 0;
  int tid = 0;
};

bool is_instant_type(const std::string& type) {
  return type == "replan" || type == "deadline_risk" ||
         type == "workflow_arrival" || type == "admission" ||
         type == "config_skew" || type == "migration" ||
         type == "cell_overload" || type == "quota_deferral" ||
         type == "route_infeasible" || type == "workflow_forgotten" ||
         type == "cell_failed" || type == "cell_recovered" ||
         type == "failover";
}

// Track label for an instant event: events stamped with a federation cell
// get one track per (type, cell) — "replan cell 3" — instead of silently
// interleaving every cell's replans on one track.
std::string instant_track(const TraceRecord& record,
                          const std::string& type) {
  const auto cell = record.find("cell");
  if (cell == record.end()) return type;
  return type + " cell " + cell->second;
}

}  // namespace

namespace {

// Bookkeeping for the real-thread-id ("runtime threads") view rebuilt from
// the concurrent runtime's causal-chain events. All stamps are wall-clock
// seconds (obs::wall_now_s timebase).
struct QueuedEventStamp {
  double enqueue_wall_s = 0.0;
  double dequeue_wall_s = -1.0;  // <0: never drained
  int lane = 0;                  // producer lane
  std::string event;             // sim event name
  bool trigger = false;
  std::int64_t batch = 0;        // 0: never drained
};

struct ReplanStamp {
  double begin_wall_s = -1.0;
  double done_wall_s = -1.0;
  double end_wall_s = -1.0;
  int serving_lane = 0;
  int solver_lane = 0;
  bool adopted = false;
  TraceRecord terminal;  // stage decomposition, shown as slice args
};

}  // namespace

std::string render_chrome_trace(const std::vector<TraceRecord>& events) {
  std::map<std::int64_t, Span> spans;   // by span id, insertion = id order
  std::vector<const TraceRecord*> instants;
  std::map<std::int64_t, QueuedEventStamp> chain_events;  // by event trace id
  std::map<std::int64_t, std::int64_t> batch_replan;      // batch → replan
  std::map<std::int64_t, ReplanStamp> replans;            // by replan trace id
  double latest_s = 0.0;

  for (const TraceRecord& record : events) {
    const std::string type = field_string(record, "type");
    const double sim_s = field_double(record, "sim_s",
                                      field_double(record, "now_s"));
    latest_s = std::max(latest_s, sim_s);
    if (type == "event_enqueued") {
      QueuedEventStamp& stamp =
          chain_events[static_cast<std::int64_t>(field_double(record,
                                                              "trace"))];
      stamp.enqueue_wall_s = field_double(record, "wall_s");
      stamp.lane = static_cast<int>(field_double(record, "lane"));
      stamp.event = field_string(record, "event");
      stamp.trigger = field_string(record, "trigger") == "true";
      continue;
    }
    if (type == "event_dequeued") {
      QueuedEventStamp& stamp =
          chain_events[static_cast<std::int64_t>(field_double(record,
                                                              "trace"))];
      stamp.dequeue_wall_s = field_double(record, "wall_s");
      stamp.batch = static_cast<std::int64_t>(field_double(record, "batch"));
      continue;
    }
    if (type == "batch_planned") {
      batch_replan[static_cast<std::int64_t>(field_double(record, "batch"))] =
          static_cast<std::int64_t>(field_double(record, "replan"));
      continue;
    }
    if (type == "solve_begin") {
      ReplanStamp& stamp =
          replans[static_cast<std::int64_t>(field_double(record, "replan"))];
      stamp.begin_wall_s = field_double(record, "wall_s");
      stamp.serving_lane = static_cast<int>(field_double(record, "lane"));
      continue;
    }
    if (type == "solve_done") {
      ReplanStamp& stamp =
          replans[static_cast<std::int64_t>(field_double(record, "replan"))];
      stamp.done_wall_s = field_double(record, "wall_s");
      stamp.solver_lane = static_cast<int>(field_double(record, "lane"));
      continue;
    }
    if (type == "plan_adopted" || type == "plan_discarded") {
      ReplanStamp& stamp =
          replans[static_cast<std::int64_t>(field_double(record, "replan"))];
      stamp.end_wall_s = field_double(record, "wall_s");
      stamp.adopted = type == "plan_adopted";
      stamp.terminal = record;
      continue;
    }
    if (type == "span_begin") {
      Span span;
      span.id = static_cast<std::int64_t>(field_double(record, "span"));
      span.parent = static_cast<std::int64_t>(field_double(record, "parent"));
      span.kind = field_string(record, "kind");
      span.name = field_string(record, "name");
      span.begin_s = sim_s;
      span.begin_record = record;
      spans[span.id] = std::move(span);
    } else if (type == "span_end") {
      const auto it = spans.find(
          static_cast<std::int64_t>(field_double(record, "span")));
      if (it != spans.end()) {
        it->second.end_s = sim_s;
        it->second.ended = true;
      }
    } else if (is_instant_type(type)) {
      instants.push_back(&record);
    }
  }

  // Project the span tree onto Chrome's pid/tid axes: one pid per workflow
  // span (slice on tid 0), one tid per job under it, nested spans inherit
  // their parent's tid; everything outside a workflow shares pid 0.
  int next_pid = 1;
  std::map<int, int> next_tid;  // per pid; 0 is the workflow slice itself
  next_tid[0] = 1;
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;
  process_names[0] = "cluster";
  for (auto& [id, span] : spans) {
    (void)id;
    if (span.kind == "workflow") {
      span.pid = next_pid++;
      span.tid = 0;
      next_tid[span.pid] = 1;
      process_names[span.pid] = span.name;
      thread_names[{span.pid, 0}] = "workflow";
      continue;
    }
    const auto parent_it = spans.find(span.parent);
    if (parent_it == spans.end()) {  // root span outside any workflow
      span.pid = 0;
      span.tid = next_tid[0]++;
      thread_names[{0, span.tid}] = span.kind + " " + span.name;
    } else if (parent_it->second.kind == "workflow") {
      span.pid = parent_it->second.pid;
      span.tid = next_tid[span.pid]++;
      thread_names[{span.pid, span.tid}] = span.name;
    } else {  // nested (placement under job): share the parent's track
      span.pid = parent_it->second.pid;
      span.tid = parent_it->second.tid;
    }
  }
  // Instant events get one track per (type, cell) under pid 0.
  std::map<std::string, int> instant_tids;
  for (const TraceRecord* record : instants) {
    const std::string track =
        instant_track(*record, field_string(*record, "type"));
    if (!instant_tids.count(track)) {
      const int tid = next_tid[0]++;
      instant_tids[track] = tid;
      thread_names[{0, tid}] = track;
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event_json) {
    if (!first) out += ",";
    first = false;
    out += "\n" + event_json;
  };
  for (const auto& [pid, name] : process_names) {
    append("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
           escaped(name) + "}}");
  }
  for (const auto& [key, name] : thread_names) {
    append("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(key.first) + ",\"tid\":" +
           std::to_string(key.second) + ",\"args\":{\"name\":" +
           escaped(name) + "}}");
  }
  for (const auto& [id, span] : spans) {
    (void)id;
    const double end_s = span.ended ? span.end_s : latest_s;
    append("{\"ph\":\"X\",\"name\":" + escaped(span.name) +
           ",\"cat\":" + escaped(span.kind) +
           ",\"ts\":" + number(span.begin_s * 1e6) +
           ",\"dur\":" + number(std::max(end_s - span.begin_s, 0.0) * 1e6) +
           ",\"pid\":" + std::to_string(span.pid) +
           ",\"tid\":" + std::to_string(span.tid) +
           ",\"args\":" + args_object(span.begin_record) + "}");
  }
  for (const TraceRecord* record : instants) {
    const std::string type = field_string(*record, "type");
    std::string name = type;
    if (type == "replan") {
      name += "(" + field_string(*record, "cause") + ")";
    } else if (type == "deadline_risk") {
      name += ":" + field_string(*record, "level");
    }
    append("{\"ph\":\"i\",\"s\":\"g\",\"name\":" + escaped(name) +
           ",\"cat\":" + escaped(type) +
           // Federation events stamp sim_s; core events stamp now_s.
           ",\"ts\":" +
           number(field_double(*record, "now_s",
                               field_double(*record, "sim_s")) *
                  1e6) +
           ",\"pid\":0,\"tid\":" +
           std::to_string(instant_tids[instant_track(*record, type)]) +
           ",\"args\":" + args_object(*record) + "}");
  }
  // --- Real-thread ("runtime threads") view ------------------------------
  // Rebuilt from the concurrent runtime's causal-chain events; timestamps
  // here are wall-clock microseconds (obs::wall_now_s timebase), because
  // the chain crosses threads and sim time cannot order it. Lanes are the
  // obs::thread_lane ids the events were emitted from.
  if (!chain_events.empty() || !replans.empty()) {
    constexpr int kRuntimePid = 9000;
    // Role per lane, highest wins: serving > solver > producer. The serving
    // lane usually also produces events (single-threaded sim loop).
    std::map<int, int> lane_role;  // 1 producer, 2 solver, 3 serving
    auto raise_role = [&](int lane, int role) {
      int& slot = lane_role[lane];
      slot = std::max(slot, role);
    };
    for (const auto& [trace, stamp] : chain_events) {
      (void)trace;
      raise_role(stamp.lane, 1);
    }
    for (const auto& [id, stamp] : replans) {
      (void)id;
      if (stamp.begin_wall_s >= 0.0) raise_role(stamp.serving_lane, 3);
      if (stamp.done_wall_s >= 0.0) raise_role(stamp.solver_lane, 2);
    }
    append("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(kRuntimePid) +
           ",\"tid\":0,\"args\":{\"name\":\"runtime threads (wall-clock "
           "us)\"}}");
    for (const auto& [lane, role] : lane_role) {
      const char* kind = role == 3 ? "serving" : role == 2 ? "solver"
                                                           : "producer";
      append("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
             std::to_string(kRuntimePid) + ",\"tid\":" +
             std::to_string(lane) + ",\"args\":{\"name\":\"lane " +
             std::to_string(lane) + " (" + kind + ")\"}}");
    }
    // Queue-wait slices on the producing lane: enqueue → drain.
    for (const auto& [trace, stamp] : chain_events) {
      if (stamp.dequeue_wall_s < 0.0) continue;  // never drained
      append("{\"ph\":\"X\",\"name\":" + escaped("queue:" + stamp.event) +
             ",\"cat\":\"queue_wait\",\"ts\":" +
             number(stamp.enqueue_wall_s * 1e6) + ",\"dur\":" +
             number(std::max(stamp.dequeue_wall_s - stamp.enqueue_wall_s,
                             0.0) * 1e6) +
             ",\"pid\":" + std::to_string(kRuntimePid) +
             ",\"tid\":" + std::to_string(stamp.lane) +
             ",\"args\":{\"trace\":" + escaped(std::to_string(trace)) +
             ",\"trigger\":" + escaped(stamp.trigger ? "true" : "false") +
             ",\"batch\":" + escaped(std::to_string(stamp.batch)) + "}}");
    }
    // Solve slices on the solver lane (submission → solver done; includes
    // pool dispatch wait) and adoption slices on the serving lane (solver
    // done → harvest).
    for (const auto& [id, stamp] : replans) {
      if (stamp.begin_wall_s >= 0.0 && stamp.done_wall_s >= 0.0) {
        append("{\"ph\":\"X\",\"name\":" +
               escaped("solve#" + std::to_string(id)) +
               ",\"cat\":\"solve\",\"ts\":" +
               number(stamp.begin_wall_s * 1e6) + ",\"dur\":" +
               number(std::max(stamp.done_wall_s - stamp.begin_wall_s, 0.0) *
                      1e6) +
               ",\"pid\":" + std::to_string(kRuntimePid) +
               ",\"tid\":" + std::to_string(stamp.solver_lane) +
               ",\"args\":{\"replan\":" + escaped(std::to_string(id)) +
               "}}");
      }
      if (stamp.done_wall_s >= 0.0 && stamp.end_wall_s >= 0.0) {
        append("{\"ph\":\"X\",\"name\":" +
               escaped((stamp.adopted ? "adopt#" : "discard#") +
                       std::to_string(id)) +
               ",\"cat\":\"adoption\",\"ts\":" +
               number(stamp.done_wall_s * 1e6) + ",\"dur\":" +
               number(std::max(stamp.end_wall_s - stamp.done_wall_s, 0.0) *
                      1e6) +
               ",\"pid\":" + std::to_string(kRuntimePid) +
               ",\"tid\":" + std::to_string(stamp.serving_lane) +
               ",\"args\":" + args_object(stamp.terminal) + "}");
      }
    }
    // Flow arrows along each trigger event's causal chain: queue slice →
    // solve slice → adoption slice, id = the event's trace id.
    for (const auto& [trace, stamp] : chain_events) {
      if (!stamp.trigger || stamp.dequeue_wall_s < 0.0) continue;
      const auto replan_it = batch_replan.find(stamp.batch);
      if (replan_it == batch_replan.end()) continue;
      const auto stamp_it = replans.find(replan_it->second);
      if (stamp_it == replans.end()) continue;
      const ReplanStamp& replan = stamp_it->second;
      if (replan.begin_wall_s < 0.0 || replan.done_wall_s < 0.0 ||
          replan.end_wall_s < 0.0) {
        continue;
      }
      const std::string common =
          ",\"id\":" + std::to_string(trace) +
          ",\"name\":\"chain\",\"cat\":\"chain\",\"pid\":" +
          std::to_string(kRuntimePid);
      append("{\"ph\":\"s\"" + common +
             ",\"ts\":" + number(stamp.enqueue_wall_s * 1e6) +
             ",\"tid\":" + std::to_string(stamp.lane) + "}");
      append("{\"ph\":\"t\"" + common +
             ",\"ts\":" + number(replan.begin_wall_s * 1e6) +
             ",\"tid\":" + std::to_string(replan.solver_lane) + "}");
      append("{\"ph\":\"f\",\"bp\":\"e\"" + common +
             ",\"ts\":" + number(replan.done_wall_s * 1e6) +
             ",\"tid\":" + std::to_string(replan.serving_lane) + "}");
    }
  }
  out += "\n]}\n";
  return out;
}

namespace {

/// Splits a per-cell metric name ("cluster.cell.<id>.<rest>") into its cell
/// id and family ("cluster.cell.<rest>"), so the Prometheus rendering can
/// turn the id into a proper {cell="N"} label instead of minting one metric
/// family per cell. Returns false for every other name.
bool split_cell_metric(const std::string& name, std::string* family,
                       std::string* cell) {
  constexpr const char* kPrefix = "cluster.cell.";
  constexpr std::size_t kPrefixLen = 13;
  if (name.rfind(kPrefix, 0) != 0) return false;
  const std::size_t dot = name.find('.', kPrefixLen);
  if (dot == std::string::npos || dot == kPrefixLen) return false;
  const std::string id = name.substr(kPrefixLen, dot - kPrefixLen);
  for (const char c : id) {
    if (c < '0' || c > '9') return false;
  }
  *cell = id;
  *family = std::string("cluster.cell.") + name.substr(dot + 1);
  return true;
}

}  // namespace

std::string render_prometheus(const MetricSnapshot& snapshot,
                              const std::string& prefix) {
  auto sanitize = [&](const std::string& name) {
    std::string out = prefix.empty() ? "" : prefix + "_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      out.push_back(ok ? c : '_');
    }
    return out;
  };
  std::string out;
  // Per-cell series grouped by family so each family gets one TYPE line.
  std::map<std::string, std::string> cell_series;  // family -> rendered lines
  std::string family;
  std::string cell;
  for (const auto& [name, value] : snapshot.counters) {
    if (split_cell_metric(name, &family, &cell)) {
      cell_series[sanitize(family) + "_total\tcounter"] +=
          sanitize(family) + "_total{cell=\"" + cell + "\"} " +
          std::to_string(value) + "\n";
      continue;
    }
    const std::string metric = sanitize(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (split_cell_metric(name, &family, &cell)) {
      cell_series[sanitize(family) + "\tgauge"] +=
          sanitize(family) + "{cell=\"" + cell + "\"} " + number(value) + "\n";
      continue;
    }
    const std::string metric = sanitize(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + number(value) + "\n";
  }
  for (const MetricSnapshot::HistogramStats& stats : snapshot.histograms) {
    const bool per_cell = split_cell_metric(stats.name, &family, &cell);
    const std::string metric = sanitize(per_cell ? family : stats.name);
    const std::string label = per_cell ? "cell=\"" + cell + "\"," : "";
    std::string lines;
    lines += metric + "{" + label + "quantile=\"0.5\"} " + number(stats.p50) +
             "\n";
    lines += metric + "{" + label + "quantile=\"0.9\"} " + number(stats.p90) +
             "\n";
    lines += metric + "{" + label + "quantile=\"0.95\"} " +
             number(stats.p95) + "\n";
    lines += metric + "{" + label + "quantile=\"0.99\"} " +
             number(stats.p99) + "\n";
    lines += metric + "_sum" +
             (per_cell ? "{cell=\"" + cell + "\"}" : std::string()) + " " +
             number(stats.sum) + "\n";
    lines += metric + "_count" +
             (per_cell ? "{cell=\"" + cell + "\"}" : std::string()) + " " +
             std::to_string(stats.count) + "\n";
    if (per_cell) {
      cell_series[metric + "\tsummary"] += lines;
    } else {
      out += "# TYPE " + metric + " summary\n";
      out += lines;
    }
  }
  for (const auto& [key, lines] : cell_series) {
    const std::size_t tab = key.find('\t');
    out += "# TYPE " + key.substr(0, tab) + " " + key.substr(tab + 1) + "\n";
    out += lines;
  }
  return out;
}

}  // namespace flowtime::obs
