// Observability metrics: a process-wide registry of named counters, gauges
// and histograms, plus RAII wall-clock timers.
//
// Design constraints (DESIGN.md "Observability"):
//   * Near-zero overhead when disabled. Every instrumentation site guards
//     itself with a single relaxed atomic load (`obs::enabled()`); nothing
//     else — no map lookups, no clock reads — happens on the disabled path.
//   * No library writes to stdout (benches own stdout); textual renderings
//     are returned as strings for the caller to place.
//   * Metric handles returned by the registry are stable for the process
//     lifetime, so hot paths may cache `Counter&` references.
//
// Metric names are dot-separated paths, lowest-level component last:
// "lp.simplex.pivots", "core.replans", "sim.slots".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace flowtime::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Master switch for the whole observability layer. Disabled by default so
/// tests and benches pay nothing; enabling is cheap and idempotent.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool enabled);

/// Monotonic event count. Thread-safe.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written value. Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample accumulator with full retention (the solver emits a few thousand
/// observations per run at most, so keeping every sample is cheap and lets
/// callers compute exact percentiles). Thread-safe.
class Histogram {
 public:
  void observe(double value);

  std::int64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const; // 0 when empty
  /// Exact nearest-rank quantile over all samples, q in [0, 1]; 0 when
  /// empty. Delegates to util::quantile — one convention codebase-wide.
  /// Copies and sorts per call; use quantiles() to read several at once.
  double percentile(double q) const;
  /// All requested quantiles from a single copy + sort of the samples.
  /// Returns one value per entry of `qs` (each in [0, 1], clamped).
  /// Registry::snapshot and render_text use this so a snapshot costs one
  /// sort per histogram instead of one per quantile.
  std::vector<double> quantiles(const std::vector<double>& qs) const;
  std::vector<double> samples() const;
  /// Text rendering via util::render_histogram.
  std::string render(const util::HistogramOptions& options = {}) const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  double sum_ = 0.0;
};

/// Point-in-time copy of every metric in a registry, for exporters that
/// need to iterate (obs/export.h renders it as Prometheus text) without
/// holding registry locks while formatting.
struct MetricSnapshot {
  struct HistogramStats {
    std::string name;
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<std::string, std::int64_t>> counters;  // sorted
  std::vector<std::pair<std::string, double>> gauges;          // sorted
  std::vector<HistogramStats> histograms;                      // sorted
};

/// Named metric store. Lookup creates on first use; returned references are
/// valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All metrics as sorted "name value" / "name count mean p50 p95 p99 max"
  /// lines, for dumping at the end of a bench run.
  std::string render_text() const;

  /// Copies every metric's current value (histograms reduced to count/sum/
  /// min/max and exact p50/p90/p95/p99).
  MetricSnapshot snapshot() const;

  /// Zeroes every existing metric (handles stay valid). Tests use this
  /// between cases.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every instrumentation site uses.
Registry& registry();

/// RAII wall-clock timer (steady clock). On destruction writes elapsed
/// seconds to the optional out-parameter and/or observes it into the
/// optional histogram. Construct only on the enabled path — the constructor
/// reads the clock unconditionally.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* elapsed_out, Histogram* histogram = nullptr);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far without stopping the timer.
  double elapsed_s() const;

 private:
  double* out_;
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

}  // namespace flowtime::obs
