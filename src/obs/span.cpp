#include "obs/span.h"

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "obs/trace.h"

namespace flowtime::obs {

namespace {

struct OpenSpan {
  std::string kind;
  std::string name;
  int workflow_id = -1;
};

// Open-span table. Span traffic is low-frequency (per workflow, job or
// placement transition, never per LP pivot), so one mutex is plenty.
std::mutex g_mutex;
std::map<SpanId, OpenSpan>& open_spans() {
  static auto* spans = new std::map<SpanId, OpenSpan>();
  return *spans;
}
std::atomic<std::int64_t> g_next_id{1};

void emit_end(SpanId span, const OpenSpan& info, double sim_s) {
  TraceEvent event("span_end");
  event.field("span", span)
      .field("kind", info.kind)
      .field("name", info.name)
      .field("sim_s", sim_s)
      .field("wall_s", wall_now_s());
  if (info.workflow_id >= 0) event.field("workflow", info.workflow_id);
  emit(event);
}

}  // namespace

SpanId begin_span(std::string_view kind, std::string_view name,
                  SpanId parent, double sim_s, const SpanMeta& meta) {
  if (trace_sink() == nullptr) return kNoSpan;
  const SpanId id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    open_spans()[id] =
        OpenSpan{std::string(kind), std::string(name), meta.workflow_id};
  }
  TraceEvent event("span_begin");
  event.field("span", id)
      .field("parent", parent)
      .field("kind", kind)
      .field("name", name)
      .field("sim_s", sim_s)
      .field("wall_s", wall_now_s());
  if (meta.workflow_id >= 0) event.field("workflow", meta.workflow_id);
  if (meta.node >= 0) event.field("node", meta.node);
  if (meta.uid >= 0) event.field("uid", meta.uid);
  if (meta.deadline_s >= 0.0) event.field("deadline_s", meta.deadline_s);
  emit(event);
  return id;
}

void end_span(SpanId span, double sim_s) {
  if (span == kNoSpan) return;
  OpenSpan info;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto& spans = open_spans();
    const auto it = spans.find(span);
    if (it == spans.end()) return;  // unknown or already closed
    info = std::move(it->second);
    spans.erase(it);
  }
  emit_end(span, info, sim_s);
}

int open_span_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return static_cast<int>(open_spans().size());
}

void end_open_spans(double sim_s) {
  std::map<SpanId, OpenSpan> leftover;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    leftover.swap(open_spans());
  }
  // Children were opened after their parents, so descending id closes
  // placement before job before workflow.
  for (auto it = leftover.rbegin(); it != leftover.rend(); ++it) {
    emit_end(it->first, it->second, sim_s);
  }
}

void reset_spans_for_testing() {
  std::lock_guard<std::mutex> lock(g_mutex);
  open_spans().clear();
  g_next_id.store(1, std::memory_order_relaxed);
}

}  // namespace flowtime::obs
