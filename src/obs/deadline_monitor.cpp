#include "obs/deadline_monitor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::obs {

namespace {
constexpr double kTol = 1e-9;

int severity(RiskLevel level) { return static_cast<int>(level); }
}  // namespace

const char* to_string(RiskLevel level) {
  switch (level) {
    case RiskLevel::kOk:
      return "ok";
    case RiskLevel::kWarn:
      return "warn";
    case RiskLevel::kBreach:
      return "breach";
  }
  return "ok";
}

DeadlineMonitor::DeadlineMonitor(DeadlineMonitorConfig config)
    : config_(config) {}

RiskLevel DeadlineMonitor::classify(const JobState& job, double now_s,
                                    double projected_s) const {
  const double laxity = job.deadline_s - projected_s;
  if (laxity < -kTol) return RiskLevel::kBreach;
  const double remaining_window = std::max(job.deadline_s - now_s, 0.0);
  const double threshold = std::max(
      config_.warn_fraction * remaining_window, config_.warn_floor_s);
  if (laxity < threshold - kTol) return RiskLevel::kWarn;
  return RiskLevel::kOk;
}

void DeadlineMonitor::emit_transition(const char* entity, int workflow_id,
                                      int node, double now_s,
                                      const JobState& job) const {
  if (!enabled()) return;
  registry().counter("obs.deadline.risk_events").add();
  if (job.level == RiskLevel::kBreach) {
    registry().counter("obs.deadline.breaches").add();
  }
  TraceEvent event("deadline_risk");
  event.field("entity", entity)
      .field("workflow", workflow_id);
  if (node >= 0) event.field("node", node);
  event.field("level", to_string(job.level))
      .field("now_s", now_s)
      .field("deadline_s", job.deadline_s)
      .field("projected_s", job.projected_s)
      .field("laxity_s", job.laxity_s);
  if (job.initial_laxity_s > kTol) {
    event.field("slack_consumed",
                (job.initial_laxity_s - job.laxity_s) / job.initial_laxity_s);
  }
  emit(event);
}

void DeadlineMonitor::publish_gauges() const {
  if (!enabled()) return;
  int inflight = 0, warn = 0, breach = 0;
  double min_laxity = 0.0;
  bool has_laxity = false;
  for (const auto& [key, job] : jobs_) {
    (void)key;
    if (job.complete) continue;
    ++inflight;
    if (job.level == RiskLevel::kWarn) ++warn;
    if (job.level == RiskLevel::kBreach) ++breach;
    if (!has_laxity || job.laxity_s < min_laxity) {
      min_laxity = job.laxity_s;
      has_laxity = true;
    }
  }
  int workflows = 0;
  for (const auto& [id, workflow] : workflows_) {
    (void)id;
    if (workflow.inflight > 0) ++workflows;
  }
  Registry& reg = registry();
  reg.gauge("obs.deadline.workflows_inflight").set(workflows);
  reg.gauge("obs.deadline.jobs_inflight").set(inflight);
  reg.gauge("obs.deadline.jobs_warn").set(warn);
  reg.gauge("obs.deadline.jobs_breach").set(breach);
  reg.gauge("obs.deadline.min_laxity_s").set(has_laxity ? min_laxity : 0.0);
}

void DeadlineMonitor::track_workflow(int workflow_id, double release_s,
                                     double deadline_s) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkflowState& workflow = workflows_[workflow_id];
  workflow.release_s = release_s;
  workflow.deadline_s = deadline_s;
  workflow.latest_s = release_s;
  workflow.level = RiskLevel::kOk;
  workflow.inflight = 0;
  publish_gauges();
}

void DeadlineMonitor::track_job(int workflow_id, int node, double release_s,
                                double deadline_s, double min_runtime_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!workflows_.count(workflow_id)) {
    // track_workflow was skipped; degrade gracefully to the job's window.
    WorkflowState& workflow = workflows_[workflow_id];
    workflow.release_s = release_s;
    workflow.deadline_s = deadline_s;
    workflow.latest_s = release_s;
  }
  JobState job;
  job.release_s = release_s;
  job.deadline_s = deadline_s;
  job.projected_s = release_s + min_runtime_s;
  job.laxity_s = deadline_s - job.projected_s;
  job.initial_laxity_s = job.laxity_s;
  job.level = RiskLevel::kOk;
  const JobKey key{workflow_id, node};
  if (!jobs_.count(key)) ++workflows_[workflow_id].inflight;
  jobs_[key] = job;
  publish_gauges();
}

void DeadlineMonitor::update_job(int workflow_id, int node, double now_s,
                                 double projected_completion_s) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(JobKey{workflow_id, node});
  if (it == jobs_.end() || it->second.complete) return;
  JobState& job = it->second;
  job.projected_s = projected_completion_s;
  job.laxity_s = job.deadline_s - projected_completion_s;
  const RiskLevel level = classify(job, now_s, projected_completion_s);
  if (level != job.level) {
    job.level = level;
    emit_transition("job", workflow_id, node, now_s, job);
  }
  refresh_workflow(workflow_id, now_s);
  publish_gauges();
}

void DeadlineMonitor::complete_job(int workflow_id, int node,
                                   double completion_s) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(JobKey{workflow_id, node});
  if (it == jobs_.end() || it->second.complete) return;
  JobState& job = it->second;
  job.complete = true;
  job.projected_s = completion_s;
  job.laxity_s = job.deadline_s - completion_s;
  // The final verdict ignores the warn band: a completed job either made
  // its Stage-1 deadline or it did not.
  const RiskLevel level = job.laxity_s < -kTol ? RiskLevel::kBreach
                                               : RiskLevel::kOk;
  if (level != job.level) {
    job.level = level;
    emit_transition("job", workflow_id, node, completion_s, job);
  }
  const auto workflow_it = workflows_.find(workflow_id);
  if (workflow_it != workflows_.end() && workflow_it->second.inflight > 0) {
    --workflow_it->second.inflight;
  }
  refresh_workflow(workflow_id, completion_s);
  publish_gauges();
}

void DeadlineMonitor::refresh_workflow(int workflow_id, double now_s) {
  const auto it = workflows_.find(workflow_id);
  if (it == workflows_.end()) return;
  WorkflowState& workflow = it->second;
  double latest = workflow.release_s;
  RiskLevel level = RiskLevel::kOk;
  for (const auto& [key, job] : jobs_) {
    if (key.first != workflow_id) continue;
    latest = std::max(latest, job.projected_s);
    if (severity(job.level) > severity(level)) level = job.level;
  }
  workflow.latest_s = latest;
  if (level != workflow.level) {
    workflow.level = level;
    JobState as_job;  // reuse the event shape for the workflow entity
    as_job.deadline_s = workflow.deadline_s;
    as_job.initial_laxity_s = workflow.deadline_s - workflow.release_s;
    as_job.projected_s = latest;
    as_job.laxity_s = workflow.deadline_s - latest;
    as_job.level = level;
    emit_transition("workflow", workflow_id, -1, now_s, as_job);
  }
}

void DeadlineMonitor::forget_workflow(int workflow_id) {
  std::lock_guard<std::mutex> lock(mu_);
  workflows_.erase(workflow_id);
  std::erase_if(jobs_, [workflow_id](const auto& entry) {
    return entry.first.first == workflow_id;
  });
  publish_gauges();
}

RiskLevel DeadlineMonitor::job_level(int workflow_id, int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(JobKey{workflow_id, node});
  return it == jobs_.end() ? RiskLevel::kOk : it->second.level;
}

RiskLevel DeadlineMonitor::workflow_level(int workflow_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = workflows_.find(workflow_id);
  return it == workflows_.end() ? RiskLevel::kOk : it->second.level;
}

int DeadlineMonitor::inflight_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& [key, job] : jobs_) {
    (void)key;
    if (!job.complete) ++count;
  }
  return count;
}

int DeadlineMonitor::inflight_workflows() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& [id, workflow] : workflows_) {
    (void)id;
    if (workflow.inflight > 0) ++count;
  }
  return count;
}

void DeadlineMonitor::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.clear();
  workflows_.clear();
}

DeadlineMonitor& deadline_monitor() {
  static auto* monitor = new DeadlineMonitor();  // process lifetime
  return *monitor;
}

}  // namespace flowtime::obs
