#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace flowtime::obs {

namespace {

void append_escaped(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_key(std::string* body, std::string_view key) {
  if (!body->empty()) body->push_back(',');
  append_escaped(body, key);
  body->push_back(':');
}

}  // namespace

TraceEvent::TraceEvent(std::string_view type) { field("type", type); }

TraceEvent& TraceEvent::field(std::string_view key, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan literals; keep the information as a string.
    return field(key, value > 0 ? "inf" : (value < 0 ? "-inf" : "nan"));
  }
  append_key(&body_, key);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  body_ += buffer;
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t value) {
  append_key(&body_, key);
  body_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, bool value) {
  append_key(&body_, key);
  body_ += value ? "true" : "false";
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view value) {
  append_key(&body_, key);
  append_escaped(&body_, value);
  return *this;
}

std::string TraceEvent::to_json() const { return "{" + body_ + "}"; }

JsonlFileSink::JsonlFileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    FT_LOG(kError) << "obs: cannot open trace file " << path;
  }
}

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlFileSink::write(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(json_line.data(), 1, json_line.size(), file_);
  std::fputc('\n', file_);
}

void MemorySink::write(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(json_line);
}

std::vector<std::string> MemorySink::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void MemorySink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
}

namespace {

// Ownership under a mutex; emit() reads the raw pointer through an atomic
// so the hot path never locks.
std::mutex g_sink_mutex;
std::unique_ptr<TraceSink> g_sink_owner;
std::atomic<TraceSink*> g_sink{nullptr};

}  // namespace

void set_trace_sink(std::unique_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink.store(sink.get(), std::memory_order_release);
  g_sink_owner = std::move(sink);
  set_enabled(g_sink_owner != nullptr);
}

void clear_trace_sink() { set_trace_sink(nullptr); }

TraceSink* trace_sink() { return g_sink.load(std::memory_order_acquire); }

void emit(const TraceEvent& event) {
  if (TraceSink* sink = trace_sink()) sink->write(event.to_json());
}

bool open_trace_file(const std::string& path) {
  auto sink = std::make_unique<JsonlFileSink>(path);
  if (!sink->ok()) return false;
  set_trace_sink(std::move(sink));
  return true;
}

namespace {

void skip_spaces(const std::string& s, std::size_t* i) {
  while (*i < s.size() && (s[*i] == ' ' || s[*i] == '\t')) ++*i;
}

bool parse_string(const std::string& s, std::size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < s.size()) {
    const char c = s[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      if (*i + 1 >= s.size()) return false;
      const char esc = s[*i + 1];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'u': {
          if (*i + 5 >= s.size()) return false;
          // Only the escapes TraceEvent produces: low control characters.
          unsigned code = 0;
          for (int d = 0; d < 4; ++d) {
            const char h = s[*i + 2 + static_cast<std::size_t>(d)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          out->push_back(static_cast<char>(code));
          *i += 4;
          break;
        }
        default:
          return false;
      }
      *i += 2;
      continue;
    }
    out->push_back(c);
    ++*i;
  }
  return false;  // unterminated
}

bool parse_scalar(const std::string& s, std::size_t* i, std::string* out) {
  out->clear();
  while (*i < s.size()) {
    const char c = s[*i];
    if (c == ',' || c == '}' || c == ' ' || c == '\t') break;
    const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                         c == '.' || c == 'e' || c == 'E';
    const bool literal = std::strchr("truefalsn", c) != nullptr;
    if (!numeric && !literal) return false;
    out->push_back(c);
    ++*i;
  }
  if (out->empty()) return false;
  if (*out == "true" || *out == "false" || *out == "null") return true;
  // Must parse as a number.
  char* end = nullptr;
  std::strtod(out->c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::atomic<std::int64_t> g_next_trace_id{1};
std::atomic<int> g_next_lane{0};

}  // namespace

std::int64_t next_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

int thread_lane() {
  thread_local int lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

double wall_now_s() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

void reset_trace_ids_for_testing() {
  g_next_trace_id.store(1, std::memory_order_relaxed);
}

bool parse_flat_json(const std::string& line,
                     std::map<std::string, std::string>* out) {
  out->clear();
  std::size_t i = 0;
  skip_spaces(line, &i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_spaces(line, &i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_spaces(line, &i);
      std::string key;
      if (!parse_string(line, &i, &key)) return false;
      skip_spaces(line, &i);
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      skip_spaces(line, &i);
      std::string value;
      if (i < line.size() && line[i] == '"') {
        if (!parse_string(line, &i, &value)) return false;
      } else {
        if (!parse_scalar(line, &i, &value)) return false;
      }
      (*out)[key] = value;
      skip_spaces(line, &i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_spaces(line, &i);
  return i == line.size();
}

}  // namespace flowtime::obs
