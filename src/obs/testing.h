// Test-only RAII isolation for the process-wide observability state.
//
// The obs layer is deliberately global (one registry, one trace sink, one
// span table, one deadline monitor per process), which makes tests order-
// dependent unless each one starts from a clean slate. Declaring a
// ScopedRegistryReset at the top of a test or fixture resets everything on
// entry AND on exit, so state can neither leak in nor leak out.
#pragma once

#include "obs/deadline_monitor.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace flowtime::obs::testing {

class ScopedRegistryReset {
 public:
  ScopedRegistryReset() { reset(); }
  ~ScopedRegistryReset() { reset(); }

  ScopedRegistryReset(const ScopedRegistryReset&) = delete;
  ScopedRegistryReset& operator=(const ScopedRegistryReset&) = delete;

  /// The actual cleanup, usable standalone: removes the trace sink (which
  /// also disables the layer), zeroes every metric, drops open spans
  /// (restarting span ids from 1) and forgets all tracked deadlines.
  static void reset() {
    clear_trace_sink();
    set_enabled(false);
    registry().reset();
    reset_spans_for_testing();
    reset_trace_ids_for_testing();
    deadline_monitor().reset();
  }
};

}  // namespace flowtime::obs::testing
