// Hierarchical lifecycle spans on top of the flat trace-event stream.
//
// A span is a named interval with a stable process-wide id, an optional
// parent span, and both simulation-time and wall-time begin/end stamps. The
// layer emits each span as a pair of ordinary flat trace events —
// `span_begin` / `span_end` — through the existing TraceEvent/TraceSink
// path, so JSONL consumers that do not care about hierarchy keep working
// and the ones that do (examples/trace_report, the Chrome-trace exporter in
// obs/export.h) can rebuild the tree from `span` / `parent` ids.
//
// The instrumented hierarchy is workflow → job → placement:
//   * a `workflow` span covers release → completion of the whole DAG,
//   * a `job` span covers one node's release → completion,
//   * a `placement` span covers one contiguous run of slots in which the
//     job actually received allocation (a job may have several),
// plus flat `plan` spans from the FlowTime scheduler (one per re-plan
// epoch) and `admitted` spans from the admission controller.
//
// Like every obs feature the layer is inert until a trace sink is
// installed; instrumentation sites guard on `obs::enabled()` before
// calling in. Spans left open at the end of a simulation are closed by
// `end_open_spans`, so a well-formed trace always pairs every begin with
// exactly one end.
#pragma once

#include <cstdint>
#include <string_view>

namespace flowtime::obs {

/// Process-wide stable span identifier; 0 means "no span".
using SpanId = std::int64_t;
inline constexpr SpanId kNoSpan = 0;

/// Optional structured identity attached to span_begin events. Fields left
/// at their defaults are omitted from the emitted JSON.
struct SpanMeta {
  int workflow_id = -1;   ///< owning workflow, when any
  int node = -1;          ///< DAG node within the workflow
  std::int64_t uid = -1;  ///< simulator JobUid, when any
  double deadline_s = -1.0;  ///< absolute deadline of the spanned entity
};

/// Opens a span and emits its `span_begin` event. `sim_s` is simulation
/// time; wall time is stamped automatically (seconds since the first obs
/// call in the process). Returns the new span's id. No-op returning kNoSpan
/// when no trace sink is installed.
SpanId begin_span(std::string_view kind, std::string_view name,
                  SpanId parent, double sim_s, const SpanMeta& meta = {});

/// Closes a span and emits its `span_end` event (carrying the same kind and
/// name as the begin, for greppability). Unknown or already-closed ids are
/// ignored, so callers may end unconditionally on teardown paths.
void end_span(SpanId span, double sim_s);

/// Number of spans currently open — begin without a matching end yet.
int open_span_count();

/// Closes every open span at `sim_s`, children before parents (descending
/// id). The simulator calls this at the end of a run so horizon-expired
/// jobs and the scheduler's final plan epoch still pair up in the trace.
void end_open_spans(double sim_s);

/// Drops all open-span bookkeeping and restarts ids from 1. Test isolation
/// only (obs::testing::ScopedRegistryReset); never call mid-run.
void reset_spans_for_testing();

}  // namespace flowtime::obs
