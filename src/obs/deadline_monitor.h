// Deadline-risk monitor: per-workflow / per-job slack accounting.
//
// FlowTime's Stage-1 decomposition turns one workflow deadline into per-job
// deadlines; everything downstream (the LP, slack, re-planning) exists to
// hit those milestones. This monitor makes the runtime margin visible while
// a run is in flight instead of only in the post-hoc deadline report:
//
//   * the scheduler registers every decomposed job with its per-job
//     deadline and estimated minimum runtime (track_workflow / track_job),
//   * each slot it reports the job's projected completion time — the
//     width-limited earliest completion from now (FlowTime plans jobs to
//     finish near their deadline on purpose, so the *planned* end is not a
//     risk signal; whether the job could still make it at full width is),
//     raised to the planned end when the plan itself lands past the
//     deadline,
//   * the monitor converts that into remaining laxity (deadline minus
//     projection), classifies it as ok / warn / breach, emits a
//     `deadline_risk` trace event on every level transition, and keeps the
//     `obs.deadline.*` gauges current.
//
// "warn" means the remaining laxity is small relative to the remaining
// window (laxity < warn_fraction x (deadline - now), or below an absolute
// floor) — i.e. the projection is approaching infeasibility, not merely
// that the plan deferred work; "breach" means the projection — or the
// actual completion — is past the Stage-1 deadline. Workflow-level risk is derived from the jobs: the
// workflow projection is the latest projection/completion among its jobs,
// compared against the workflow deadline.
//
// Like the rest of obs the monitor is passive bookkeeping: events and
// gauges are only produced while a trace sink / the enabled flag is on,
// and instrumentation sites guard on obs::enabled() before calling in.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace flowtime::obs {

enum class RiskLevel { kOk, kWarn, kBreach };

/// "ok" / "warn" / "breach".
const char* to_string(RiskLevel level);

struct DeadlineMonitorConfig {
  /// Enter warn when remaining laxity falls below this fraction of the
  /// remaining window (deadline - now). Relative to *remaining* time, not
  /// the laxity at registration: FlowTime defers work toward the deadline
  /// on purpose, so any threshold anchored to the initial margin would
  /// eventually fire on every healthy just-in-time job.
  double warn_fraction = 0.1;
  /// ...or below this many seconds, whichever threshold is larger.
  double warn_floor_s = 0.0;
};

/// Tracks in-flight deadline entities and their slack. Thread-safe; one
/// instance per process via deadline_monitor(), or standalone in tests.
class DeadlineMonitor {
 public:
  explicit DeadlineMonitor(DeadlineMonitorConfig config = {});

  /// Registers a workflow released at `release_s` with absolute deadline
  /// `deadline_s`. Call before track_job for its nodes.
  void track_workflow(int workflow_id, double release_s, double deadline_s);

  /// Registers one decomposed job. `deadline_s` is the Stage-1 per-job
  /// deadline (without scheduler slack); `min_runtime_s` the width-limited
  /// minimum runtime estimate at release — together they fix the job's
  /// initial laxity, the yardstick for the warn threshold.
  void track_job(int workflow_id, int node, double release_s,
                 double deadline_s, double min_runtime_s);

  /// Per-slot progress report: the caller's current projection of when the
  /// job will finish. Emits `deadline_risk` events on level transitions and
  /// refreshes the obs.deadline.* gauges.
  void update_job(int workflow_id, int node, double now_s,
                  double projected_completion_s);

  /// The job finished at `completion_s`; its final level is judged against
  /// the actual completion and it leaves the in-flight set. When the last
  /// job of a workflow completes the workflow is finalized too.
  void complete_job(int workflow_id, int node, double completion_s);

  /// Drops a workflow and its jobs without finalizing (cancellation).
  void forget_workflow(int workflow_id);

  /// Current level of one tracked job / workflow; kOk for unknown ids.
  RiskLevel job_level(int workflow_id, int node) const;
  RiskLevel workflow_level(int workflow_id) const;

  int inflight_jobs() const;
  int inflight_workflows() const;

  /// Drops all state (tests; paired with registry().reset()).
  void reset();

 private:
  struct JobState {
    double release_s = 0.0;
    double deadline_s = 0.0;
    double initial_laxity_s = 0.0;
    double laxity_s = 0.0;         // after the latest update
    double projected_s = 0.0;      // latest projection or actual completion
    RiskLevel level = RiskLevel::kOk;
    bool complete = false;
  };
  struct WorkflowState {
    double release_s = 0.0;
    double deadline_s = 0.0;
    double latest_s = 0.0;  // max projection/completion over jobs
    RiskLevel level = RiskLevel::kOk;
    int inflight = 0;
  };
  using JobKey = std::pair<int, int>;  // workflow_id, node

  RiskLevel classify(const JobState& job, double now_s,
                     double projected_s) const;
  /// Re-derives the workflow projection/level after a job change and emits
  /// the workflow-level transition event if any. Caller holds mu_.
  void refresh_workflow(int workflow_id, double now_s);
  void publish_gauges() const;  // caller holds mu_
  void emit_transition(const char* entity, int workflow_id, int node,
                       double now_s, const JobState& job) const;

  DeadlineMonitorConfig config_;
  mutable std::mutex mu_;
  std::map<JobKey, JobState> jobs_;
  std::map<int, WorkflowState> workflows_;
};

/// The process-wide monitor every instrumentation site feeds.
DeadlineMonitor& deadline_monitor();

}  // namespace flowtime::obs
